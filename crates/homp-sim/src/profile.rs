//! Simulated microbenchmark profiling.
//!
//! "For a machine, the last two machine factors are constants, each of
//! which is obtained through microbenchmark profiling in our experiment"
//! (Section IV-B.2). The HOMP runtime does not get to read the
//! simulator's ground-truth device descriptors; instead it *measures*
//! each device exactly as the real system would:
//!
//! * link α and β from two transfer timings of different sizes,
//! * sustained FLOP/s from a compute-bound micro-kernel,
//! * memory bandwidth from a streaming (memory-bound) micro-kernel.
//!
//! The measurements run on a scratch clone of the engine so they disturb
//! neither the clock nor the trace, and with noise enabled the estimates
//! carry realistic error — which is precisely why MODEL_* distributions
//! are predictions rather than oracles.

use crate::device::DeviceId;
use crate::engine::{ChunkWork, Dir, Engine};
use crate::time::SimTime;
use homp_model::{DeviceParams, Hockney, KernelIntensity};

/// Profile of one device, as measured.
pub type MeasuredParams = DeviceParams;

/// A strongly compute-bound probe: high arithmetic intensity so the
/// roofline sits on the compute ceiling of every device in the catalog.
fn compute_probe() -> KernelIntensity {
    KernelIntensity {
        flops_per_iter: 65_536.0,
        mem_elems_per_iter: 1.0,
        data_elems_per_iter: 0.0,
        elem_bytes: 8.0,
    }
}

/// A streaming probe: one FLOP per three elements, far below any ridge
/// point, so time is bounded by memory bandwidth.
fn stream_probe() -> KernelIntensity {
    KernelIntensity {
        flops_per_iter: 1.0,
        mem_elems_per_iter: 3.0,
        data_elems_per_iter: 0.0,
        elem_bytes: 8.0,
    }
}

/// Measure one device's parameters via simulated microbenchmarks.
pub fn profile_device(engine: &Engine, dev: DeviceId) -> MeasuredParams {
    let mut scratch = engine.clone();
    scratch.reset();

    // --- link: two sizes, solve alpha + n/beta. -------------------------
    let small: u64 = 1 << 16; // 64 KiB — latency-sensitive
    let large: u64 = 1 << 26; // 64 MiB — bandwidth-dominated
    let t_small_end = scratch.transfer(dev, small, Dir::H2D, SimTime::ZERO, "probe-small");
    let t_small = t_small_end.as_secs();
    let before = scratch.dma_free_at(dev);
    let t_large_end = scratch.transfer(dev, large, Dir::H2D, before, "probe-large");
    let t_large = (t_large_end - before).as_secs();

    let link = if t_small == 0.0 && t_large == 0.0 {
        None // shared memory — no measurable link
    } else {
        let beta = (large - small) as f64 / (t_large - t_small);
        let alpha = (t_small - small as f64 / beta).max(0.0);
        Some(Hockney::new(alpha, beta))
    };

    // --- compute rate. --------------------------------------------------
    let cp = compute_probe();
    let iters = 200_000u64;
    let ready = scratch.compute_free_at(dev);
    let end = scratch.compute(dev, &ChunkWork::new(iters, &cp), ready, "probe-flops");
    let perf_flops = iters as f64 * cp.flops_per_iter / (end - ready).as_secs();

    // --- memory bandwidth. ----------------------------------------------
    let sp = stream_probe();
    let iters = 50_000_000u64;
    let ready = scratch.compute_free_at(dev);
    let end = scratch.compute(dev, &ChunkWork::new(iters, &sp), ready, "probe-stream");
    let secs = (end - ready).as_secs();
    let mem_bw = iters as f64 * sp.mem_elems_per_iter * sp.elem_bytes / secs;

    let launch_overhead = engine.machine().devices[dev as usize].launch_overhead;
    DeviceParams { perf_flops, mem_bw, link, launch_overhead }
}

/// Profile every device of the engine's machine.
pub fn profile_machine(engine: &Engine) -> Vec<MeasuredParams> {
    (0..engine.n_devices() as DeviceId).map(|d| profile_device(engine, d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::noise::NoiseModel;

    #[test]
    fn noiseless_profile_recovers_ground_truth() {
        let e = Engine::noiseless(Machine::full_node());
        for d in &e.machine().devices {
            let p = profile_device(&e, d.id);
            let truth = d.to_params();
            assert!(
                (p.perf_flops - truth.perf_flops).abs() / truth.perf_flops < 1e-6,
                "{}: perf {} vs {}",
                d.name,
                p.perf_flops,
                truth.perf_flops
            );
            assert!(
                (p.mem_bw - truth.mem_bw).abs() / truth.mem_bw < 1e-6,
                "{}: bw {} vs {}",
                d.name,
                p.mem_bw,
                truth.mem_bw
            );
            match (p.link, truth.link) {
                (None, None) => {}
                (Some(m), Some(t)) => {
                    assert!((m.beta - t.beta).abs() / t.beta < 1e-6);
                    assert!((m.alpha - t.alpha).abs() < 1e-9);
                }
                other => panic!("{}: link mismatch {:?}", d.name, other),
            }
        }
    }

    #[test]
    fn noisy_profile_is_close_but_not_exact() {
        let e = Engine::new(Machine::four_k40(), NoiseModel::new(5, 0.03));
        let p = profile_device(&e, 0);
        let truth = e.machine().devices[0].to_params();
        let rel = (p.perf_flops - truth.perf_flops).abs() / truth.perf_flops;
        assert!(rel < 0.05, "estimate should be within noise amplitude, got {rel}");
        assert!(rel > 0.0, "noisy estimate should not be exact");
    }

    #[test]
    fn profiling_does_not_disturb_engine() {
        let e = Engine::noiseless(Machine::four_k40());
        let _ = profile_machine(&e);
        assert!(e.trace().is_empty());
        assert_eq!(e.compute_free_at(0), SimTime::ZERO);
    }

    #[test]
    fn host_profiles_without_link() {
        let e = Engine::noiseless(Machine::two_cpus_two_mics());
        let p = profile_device(&e, 0);
        assert!(p.link.is_none());
        let p_mic = profile_device(&e, 2);
        assert!(p_mic.link.is_some());
    }
}
