//! Simulated microbenchmark profiling.
//!
//! "For a machine, the last two machine factors are constants, each of
//! which is obtained through microbenchmark profiling in our experiment"
//! (Section IV-B.2). The HOMP runtime does not get to read the
//! simulator's ground-truth device descriptors; instead it *measures*
//! each device exactly as the real system would:
//!
//! * link α and β from two transfer timings of different sizes,
//! * sustained FLOP/s from a compute-bound micro-kernel,
//! * memory bandwidth from a streaming (memory-bound) micro-kernel.
//!
//! The measurements run on a scratch clone of the engine so they disturb
//! neither the clock nor the trace, and with noise enabled the estimates
//! carry realistic error — which is precisely why MODEL_* distributions
//! are predictions rather than oracles.

use crate::device::DeviceId;
use crate::engine::{ChunkWork, Dir, Engine};
use crate::time::SimTime;
use homp_model::{DeviceParams, Hockney, KernelIntensity};

/// Profile of one device, as measured.
pub type MeasuredParams = DeviceParams;

/// A strongly compute-bound probe: high arithmetic intensity so the
/// roofline sits on the compute ceiling of every device in the catalog.
fn compute_probe() -> KernelIntensity {
    KernelIntensity {
        flops_per_iter: 65_536.0,
        mem_elems_per_iter: 1.0,
        data_elems_per_iter: 0.0,
        elem_bytes: 8.0,
    }
}

/// A streaming probe: one FLOP per three elements, far below any ridge
/// point, so time is bounded by memory bandwidth.
fn stream_probe() -> KernelIntensity {
    KernelIntensity {
        flops_per_iter: 1.0,
        mem_elems_per_iter: 3.0,
        data_elems_per_iter: 0.0,
        elem_bytes: 8.0,
    }
}

/// Solve the Hockney α–β model from two transfer timings
/// (`small` bytes in `t_small` seconds, `large` bytes in `t_large`).
///
/// Returns `None` when both timings are zero (shared memory — no
/// measurable link). Under heavy noise the two-point solve can
/// degenerate: `t_large <= t_small` would yield an infinite or negative
/// bandwidth, so those cases fall back to a single-point estimate from
/// the bandwidth-dominated large transfer (zero latency) — a biased but
/// finite and positive model, which is all a scheduler can ask of a
/// corrupted measurement.
pub fn solve_hockney(small: u64, t_small: f64, large: u64, t_large: f64) -> Option<Hockney> {
    debug_assert!(large > small, "probe sizes must be distinct and increasing");
    if t_small <= 0.0 && t_large <= 0.0 {
        return None; // shared memory — no measurable link
    }
    if t_large > t_small {
        let beta = (large - small) as f64 / (t_large - t_small);
        let alpha = (t_small - small as f64 / beta).max(0.0);
        if beta.is_finite() && beta > 0.0 && alpha.is_finite() {
            return Some(Hockney::new(alpha, beta));
        }
    }
    // Degenerate ordering: estimate bandwidth from whichever probe
    // actually took time, preferring the large (less latency-biased) one.
    if t_large > 0.0 {
        Some(Hockney::new(0.0, large as f64 / t_large))
    } else {
        Some(Hockney::new(0.0, small as f64 / t_small))
    }
}

/// Measure one device's parameters via simulated microbenchmarks.
pub fn profile_device(engine: &Engine, dev: DeviceId) -> MeasuredParams {
    let mut scratch = engine.clone();
    scratch.reset();

    // --- link: two sizes, solve alpha + n/beta. -------------------------
    let small: u64 = 1 << 16; // 64 KiB — latency-sensitive
    let large: u64 = 1 << 26; // 64 MiB — bandwidth-dominated
    let t_small_end = scratch.transfer(dev, small, Dir::H2D, SimTime::ZERO, "probe-small");
    let t_small = t_small_end.as_secs();
    let before = scratch.dma_free_at(dev);
    let t_large_end = scratch.transfer(dev, large, Dir::H2D, before, "probe-large");
    let t_large = (t_large_end - before).as_secs();

    let link = solve_hockney(small, t_small, large, t_large);

    // --- compute rate. --------------------------------------------------
    let cp = compute_probe();
    let iters = 200_000u64;
    let ready = scratch.compute_free_at(dev);
    let end = scratch.compute(dev, &ChunkWork::new(iters, &cp), ready, "probe-flops");
    let perf_flops = iters as f64 * cp.flops_per_iter / (end - ready).as_secs();

    // --- memory bandwidth. ----------------------------------------------
    let sp = stream_probe();
    let iters = 50_000_000u64;
    let ready = scratch.compute_free_at(dev);
    let end = scratch.compute(dev, &ChunkWork::new(iters, &sp), ready, "probe-stream");
    let secs = (end - ready).as_secs();
    let mem_bw = iters as f64 * sp.mem_elems_per_iter * sp.elem_bytes / secs;

    let launch_overhead = engine.machine().devices[dev as usize].launch_overhead;
    DeviceParams { perf_flops, mem_bw, link, launch_overhead }
}

/// Profile every device of the engine's machine.
pub fn profile_machine(engine: &Engine) -> Vec<MeasuredParams> {
    (0..engine.n_devices() as DeviceId).map(|d| profile_device(engine, d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::noise::NoiseModel;

    #[test]
    fn noiseless_profile_recovers_ground_truth() {
        let e = Engine::noiseless(Machine::full_node());
        for d in &e.machine().devices {
            let p = profile_device(&e, d.id);
            let truth = d.to_params();
            assert!(
                (p.perf_flops - truth.perf_flops).abs() / truth.perf_flops < 1e-6,
                "{}: perf {} vs {}",
                d.name,
                p.perf_flops,
                truth.perf_flops
            );
            assert!(
                (p.mem_bw - truth.mem_bw).abs() / truth.mem_bw < 1e-6,
                "{}: bw {} vs {}",
                d.name,
                p.mem_bw,
                truth.mem_bw
            );
            match (p.link, truth.link) {
                (None, None) => {}
                (Some(m), Some(t)) => {
                    assert!((m.beta - t.beta).abs() / t.beta < 1e-6);
                    assert!((m.alpha - t.alpha).abs() < 1e-9);
                }
                other => panic!("{}: link mismatch {:?}", d.name, other),
            }
        }
    }

    #[test]
    fn noisy_profile_is_close_but_not_exact() {
        let e = Engine::new(Machine::four_k40(), NoiseModel::new(5, 0.03));
        let p = profile_device(&e, 0);
        let truth = e.machine().devices[0].to_params();
        let rel = (p.perf_flops - truth.perf_flops).abs() / truth.perf_flops;
        assert!(rel < 0.05, "estimate should be within noise amplitude, got {rel}");
        assert!(rel > 0.0, "noisy estimate should not be exact");
    }

    #[test]
    fn profiling_does_not_disturb_engine() {
        let e = Engine::noiseless(Machine::four_k40());
        let _ = profile_machine(&e);
        assert!(e.trace().is_empty());
        assert_eq!(e.compute_free_at(0), SimTime::ZERO);
    }

    #[test]
    fn solve_hockney_recovers_and_survives_degenerate_timings() {
        let (small, large) = (1u64 << 16, 1u64 << 26);
        // Clean two-point data recovers the ground truth.
        let h = solve_hockney(
            small,
            1e-5 + small as f64 / 1e10,
            large,
            1e-5 + large as f64 / 1e10,
        )
        .unwrap();
        assert!((h.beta - 1e10).abs() / 1e10 < 1e-9);
        assert!((h.alpha - 1e-5).abs() < 1e-12);
        // Inverted ordering (noise): single-point fallback on the large
        // probe, zero latency.
        let h = solve_hockney(small, 2e-3, large, 1e-3).unwrap();
        assert_eq!(h.alpha, 0.0);
        assert!((h.beta - large as f64 / 1e-3).abs() < 1.0);
        // Equal timings: same fallback, still finite and positive.
        let h = solve_hockney(small, 1e-3, large, 1e-3).unwrap();
        assert!(h.beta.is_finite() && h.beta > 0.0);
        // Both zero: shared memory, no link.
        assert!(solve_hockney(small, 0.0, large, 0.0).is_none());
    }

    #[test]
    fn adversarial_noise_seed_cannot_break_profiling() {
        // Hunt for a seed where ±99.9% jitter makes the 64 MiB probe
        // appear *faster* than the 64 KiB one — the case whose two-point
        // solve would demand a negative bandwidth.
        let (small, large) = (1u64 << 16, 1u64 << 26);
        let mut hit = None;
        for seed in 0..50_000u64 {
            let e = Engine::new(Machine::four_k40(), NoiseModel::new(seed, 0.999));
            let mut scratch = e.clone();
            scratch.reset();
            let t_small =
                scratch.transfer(0, small, Dir::H2D, SimTime::ZERO, "probe-small").as_secs();
            let before = scratch.dma_free_at(0);
            let t_large =
                (scratch.transfer(0, large, Dir::H2D, before, "probe-large") - before).as_secs();
            if t_large <= t_small {
                hit = Some((seed, e));
                break;
            }
        }
        let (seed, e) = hit.expect("an inverting seed exists in the scan range");
        let p = profile_device(&e, 0);
        let link = p.link.expect("K40 has a link");
        assert!(
            link.beta.is_finite() && link.beta > 0.0,
            "seed {seed}: beta {}",
            link.beta
        );
        assert!(link.alpha.is_finite() && link.alpha >= 0.0);
        assert!(p.perf_flops.is_finite() && p.perf_flops > 0.0);
        assert!(p.mem_bw.is_finite() && p.mem_bw > 0.0);
    }

    #[test]
    fn host_profiles_without_link() {
        let e = Engine::noiseless(Machine::two_cpus_two_mics());
        let p = profile_device(&e, 0);
        assert!(p.link.is_none());
        let p_mic = profile_device(&e, 2);
        assert!(p_mic.link.is_some());
    }
}
