//! Virtual time.
//!
//! The simulator measures everything in [`SimTime`] — seconds on a
//! virtual clock that starts at 0 when an offload region begins. Using
//! virtual time instead of wall-clock time makes every experiment
//! deterministic and lets the same scheduling code run under the
//! discrete-event engine and (via the `TimeSource` abstraction in
//! `homp-core`) under real threads.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the virtual clock, in seconds. Totally ordered; NaN is
/// rejected at construction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero — the start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds.
    ///
    /// # Panics
    /// Panics on NaN or negative input.
    pub fn from_secs(s: f64) -> Self {
        assert!(s.is_finite(), "SimTime must be finite, got {s}");
        assert!(s >= 0.0, "SimTime must be non-negative, got {s}");
        SimTime(s)
    }

    /// Seconds since time zero.
    pub fn as_secs(&self) -> f64 {
        self.0
    }

    /// Milliseconds since time zero (the unit of the paper's figures).
    pub fn as_millis(&self) -> f64 {
        self.0 * 1e3
    }

    /// Microseconds since time zero.
    pub fn as_micros(&self) -> f64 {
        self.0 * 1e6
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Duration since an earlier instant (saturates at zero).
    pub fn since(&self, earlier: SimTime) -> SimSpan {
        SimSpan::from_secs((self.0 - earlier.0).max(0.0))
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction guarantees no NaN.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.4}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.2}us", self.0 * 1e6)
        }
    }
}

/// A length of virtual time, in seconds. Always non-negative.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimSpan(f64);

impl SimSpan {
    /// Zero-length span.
    pub const ZERO: SimSpan = SimSpan(0.0);

    /// Construct from seconds.
    ///
    /// # Panics
    /// Panics on NaN or negative input.
    pub fn from_secs(s: f64) -> Self {
        assert!(s.is_finite(), "SimSpan must be finite, got {s}");
        assert!(s >= 0.0, "SimSpan must be non-negative, got {s}");
        SimSpan(s)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Seconds.
    pub fn as_secs(&self) -> f64 {
        self.0
    }

    /// Milliseconds.
    pub fn as_millis(&self) -> f64 {
        self.0 * 1e3
    }

    /// Scale by a non-negative factor.
    pub fn scale(&self, f: f64) -> SimSpan {
        SimSpan::from_secs(self.0 * f)
    }
}

impl Eq for SimSpan {}

impl Ord for SimSpan {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("SimSpan is never NaN")
    }
}

impl PartialOrd for SimSpan {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<SimSpan> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimSpan> for SimTime {
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 += rhs.0;
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0 + rhs.0)
    }
}

impl AddAssign for SimSpan {
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimSpan;
    fn sub(self, rhs: SimTime) -> SimSpan {
        SimSpan::from_secs((self.0 - rhs.0).max(0.0))
    }
}

impl std::iter::Sum for SimSpan {
    fn sum<I: Iterator<Item = SimSpan>>(iter: I) -> SimSpan {
        iter.fold(SimSpan::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        SimTime(self.0).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_secs(1.5);
        let s = SimSpan::from_secs(0.25);
        assert_eq!((t + s).as_secs(), 1.75);
        assert_eq!((t + s) - t, s);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a - b, SimSpan::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative() {
        SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_secs(2.5).to_string(), "2.5000s");
        assert_eq!(SimTime::from_secs(2.5e-3).to_string(), "2.500ms");
        assert_eq!(SimTime::from_secs(2.5e-6).to_string(), "2.50us");
    }

    #[test]
    fn span_sum() {
        let total: SimSpan =
            [0.1, 0.2, 0.3].iter().map(|&s| SimSpan::from_secs(s)).sum();
        assert!((total.as_secs() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn since_saturates_and_measures() {
        let a = SimTime::from_secs(3.0);
        let b = SimTime::from_secs(1.0);
        assert_eq!(a.since(b).as_secs(), 2.0);
        assert_eq!(b.since(a), SimSpan::ZERO);
    }
}
