//! Deterministic performance jitter.
//!
//! Real devices never hit exactly their modelled rate: DVFS, cache
//! effects, and OS noise perturb every chunk. The simulator reproduces
//! this with a *deterministic* perturbation derived from a SplitMix64
//! hash of `(seed, device, operation sequence number)`, so experiments
//! are bit-for-bit reproducible while static (BLOCK) distributions still
//! exhibit the small load imbalance the paper reports (<5% average,
//! Fig. 6) and dynamic schedulers have something to correct.

/// SplitMix64 — tiny, high-quality 64-bit mixer (public domain
/// constants from Steele et al.).
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Initial accumulator of [`mix`] (pi digits).
const MIX_INIT: u64 = 0x243F_6A88_85A3_08D3;

/// One absorption round of [`mix`]: fold `w` into `acc`.
#[inline]
fn mix_round(acc: u64, w: u64) -> u64 {
    SplitMix64::new(acc ^ w).next_u64()
}

/// Stateless mix of several words — used to derive independent streams
/// per (device, sequence) pair without storing per-pair state.
pub fn mix(words: &[u64]) -> u64 {
    words.iter().fold(MIX_INIT, |acc, &w| mix_round(acc, w))
}

/// Deterministic Bernoulli draw: true with probability `p`, derived
/// from a stateless [`mix`] of `words`. The fault-injection layer uses
/// this so that whether an operation fails is a pure function of
/// `(seed, device, sequence number)` — replays are bit-identical.
pub fn bernoulli(words: &[u64], p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    let u = (mix(words) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    u < p
}

/// Multiplicative jitter model: each operation's duration is scaled by
/// `1 + amplitude * u` with `u` uniform in `[-1, 1)`.
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    seed: u64,
    /// [`mix`] accumulator after absorbing `seed` — memoized so the hot
    /// [`NoiseModel::factor`] draw runs two SplitMix rounds instead of
    /// three. Bit-identical to hashing `[seed, device, seq]` from
    /// scratch: `mix` folds left-to-right, so the seed prefix is a pure
    /// function of the seed alone.
    seed_acc: u64,
    /// Relative amplitude, e.g. `0.03` for ±3%. Zero disables noise.
    pub amplitude: f64,
}

impl NoiseModel {
    /// Create a noise model. Amplitude must be in `[0, 1)`.
    ///
    /// # Panics
    /// Panics if `amplitude` is out of range.
    pub fn new(seed: u64, amplitude: f64) -> Self {
        assert!((0.0..1.0).contains(&amplitude), "amplitude must be in [0,1), got {amplitude}");
        Self { seed, seed_acc: mix_round(MIX_INIT, seed), amplitude }
    }

    /// A noiseless model (for exactness-checking tests and ablations).
    pub fn disabled() -> Self {
        Self { seed: 0, seed_acc: mix_round(MIX_INIT, 0), amplitude: 0.0 }
    }

    /// Replace the seed, keeping the amplitude. The model is stateless
    /// (every draw hashes `(seed, device, seq)`), so reseeding makes it
    /// behave exactly like `NoiseModel::new(seed, amplitude)` — the
    /// cheap path for running one engine over many seeds.
    pub fn reseed(&mut self, seed: u64) {
        self.seed = seed;
        self.seed_acc = mix_round(MIX_INIT, seed);
    }

    /// The current seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Jitter factor for operation `seq` on device `device`: a value in
    /// `[1 - amplitude, 1 + amplitude)`, deterministic in all inputs.
    #[inline]
    pub fn factor(&self, device: u32, seq: u64) -> f64 {
        if self.amplitude == 0.0 {
            return 1.0;
        }
        // == mix(&[self.seed, device as u64, seq]) with the seed round
        // precomputed in `seed_acc`.
        let h = mix_round(mix_round(self.seed_acc, device as u64), seq);
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64); // [0,1)
        1.0 + self.amplitude * (2.0 * u - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_sequence_is_stable() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = g.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_roughly_uniform() {
        let mut g = SplitMix64::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn factor_within_bounds() {
        let nm = NoiseModel::new(3, 0.05);
        for dev in 0..8u32 {
            for seq in 0..1000u64 {
                let f = nm.factor(dev, seq);
                assert!((0.95..1.05).contains(&f), "factor {f}");
            }
        }
    }

    #[test]
    fn factor_deterministic() {
        let nm = NoiseModel::new(3, 0.05);
        assert_eq!(nm.factor(2, 10), nm.factor(2, 10));
        assert_ne!(nm.factor(2, 10), nm.factor(2, 11));
        assert_ne!(nm.factor(2, 10), nm.factor(3, 10));
    }

    #[test]
    fn factor_matches_unmemoized_mix() {
        // The memoized seed prefix must reproduce the full three-word
        // mix bit-for-bit — goldens depend on it.
        for seed in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            let nm = NoiseModel::new(seed, 0.05);
            for (dev, seq) in [(0u32, 0u64), (3, 17), (63, 999_983), (u32::MAX, u64::MAX)] {
                let h = mix(&[seed, dev as u64, seq]);
                let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let expect = 1.0 + 0.05 * (2.0 * u - 1.0);
                assert_eq!(nm.factor(dev, seq), expect, "seed {seed} dev {dev} seq {seq}");
            }
        }
    }

    #[test]
    fn reseed_matches_fresh_model() {
        let mut nm = NoiseModel::new(1, 0.03);
        nm.reseed(77);
        let fresh = NoiseModel::new(77, 0.03);
        for seq in 0..100 {
            assert_eq!(nm.factor(2, seq), fresh.factor(2, seq));
        }
    }

    #[test]
    fn disabled_noise_is_identity() {
        let nm = NoiseModel::disabled();
        assert_eq!(nm.factor(0, 0), 1.0);
        assert_eq!(nm.factor(5, 99), 1.0);
    }

    #[test]
    fn factor_mean_near_one() {
        let nm = NoiseModel::new(9, 0.05);
        let n = 50_000u64;
        let mean: f64 = (0..n).map(|s| nm.factor(0, s)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.001, "mean {mean}");
    }
}
