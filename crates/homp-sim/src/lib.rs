//! Deterministic discrete-event simulator of a heterogeneous
//! accelerator-based node — the hardware substrate for the HOMP runtime.
//!
//! The paper evaluates on a machine with two Xeon E5-2699 CPUs, four
//! NVIDIA K40 GPUs and two Intel Xeon Phi 7120P coprocessors. This crate
//! replaces that hardware with a simulator whose observable behaviour —
//! per-chunk completion times, transfer costs, DMA/compute overlap, bus
//! contention, launch overheads, run-to-run jitter — matches the shape
//! the scheduling algorithms in `homp-core` care about:
//!
//! * [`time`] — the virtual clock ([`SimTime`], [`SimSpan`]).
//! * [`noise`] — deterministic multiplicative jitter.
//! * [`device`] — device descriptors and the K40 / Xeon / Phi catalogs.
//! * [`machine`] — machines, presets, and the machine description file.
//! * [`memory`] — per-device memory spaces, copy-vs-share decisions.
//! * [`engine`] — the resource-calendar simulation core.
//! * [`fault`] — deterministic fault injection (transient DMA errors,
//!   launch timeouts, permanent device dropout).
//! * [`trace`] — operation traces, Fig.-6-style breakdowns, ASCII Gantt.
//! * [`metrics`] — per-device utilization, DMA/compute overlap, queue
//!   wait, byte/iteration counters and fault tallies, all derived from a
//!   finished trace (pure read-side observability).
//! * [`profile`] — simulated microbenchmark profiling of machine
//!   constants (the runtime measures devices, it never reads ground
//!   truth).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod device;
pub mod engine;
pub mod fault;
pub mod machine;
pub mod memory;
pub mod metrics;
pub mod noise;
pub mod profile;
pub mod time;
pub mod trace;

pub use device::{DeviceDescriptor, DeviceId, DeviceType, Link, MemoryKind};
pub use engine::{ChunkWork, Dir, Engine, TeamSched};
pub use fault::{DeviceFaultPlan, Fault, FaultKind, FaultPlan, FlakyWindow, SlowdownWindow};
pub use machine::{Machine, MachineParseError};
pub use memory::{mapping_decision, AllocId, MappingDecision, MemoryError, MemorySpace};
pub use metrics::{DeviceMetrics, Metrics, TransferStats};
pub use noise::NoiseModel;
pub use profile::{profile_device, profile_machine, solve_hockney};
pub use time::{SimSpan, SimTime};
pub use trace::{Breakdown, LabelId, OpKind, Trace, TraceEvent, TraceLevel};
