//! Trace-derived per-device metrics — the observability layer's
//! simulator half.
//!
//! [`crate::trace::Breakdown`] answers "how much time went to each
//! operation category"; [`Metrics`] answers the follow-on questions an
//! operator debugging a distribution asks: how *utilized* was each
//! device (union of busy intervals over the makespan, so triple-counted
//! overlap does not inflate the number), how much DMA actually hid
//! behind compute, how long did work sit between operations, how many
//! bytes and iterations moved, and what did fault handling cost.
//!
//! Everything here is computed after the fact from an immutable
//! [`Trace`] — recording metrics can never perturb the simulation
//! (golden traces stay byte-identical with metrics on or off).

use crate::fault::FaultKind;
use crate::trace::{OpKind, Trace};

/// Merge possibly-overlapping `(start, end)` intervals into a sorted
/// disjoint set. Zero-length intervals are dropped, and so are
/// intervals with a non-finite bound: `SimTime` arithmetic saturates
/// into `inf` under adversarial noise amplitudes, and a single such
/// interval would poison every downstream union/utilization total (or,
/// worse, a NaN would abort the report path mid-sort). Metrics are a
/// read-side diagnostic — a corrupt interval is dropped, never fatal.
fn merge(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.retain(|&(s, e)| s.is_finite() && e.is_finite() && e > s);
    iv.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total length of a merged (sorted, disjoint) interval set. Folds from
/// `+0.0`: `Iterator::sum` for floats starts at `-0.0`, which would leak
/// a negative zero out of an empty set.
fn total_len(merged: &[(f64, f64)]) -> f64 {
    merged.iter().fold(0.0, |acc, &(s, e)| acc + (e - s))
}

/// Length of the intersection of two merged interval sets.
fn intersection_len(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let (mut i, mut j, mut acc) = (0usize, 0usize, 0.0f64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            acc += hi - lo;
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    acc
}

/// Cumulative transfer accounting for a persistent device-data
/// environment (`target data`), kept *across* offloads — unlike
/// [`Metrics`], which is recomputed per trace. The runtime adds to these
/// counters as it decides, per mapped array, whether bytes must move or
/// are already resident.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Host→device bytes actually transferred.
    pub h2d_bytes: u64,
    /// Host→device bytes *elided*: requested by a map but already
    /// resident with a compatible partition, so never moved.
    pub h2d_elided_bytes: u64,
    /// Device→host bytes actually transferred (including deferred
    /// copy-backs flushed at region close or `target update from`).
    pub d2h_bytes: u64,
    /// Device→host bytes elided: per-offload copy-backs deferred by
    /// dirty tracking (the region writes back once, not every offload).
    pub d2h_elided_bytes: u64,
    /// Bytes moved to *repartition* resident data after a split change
    /// (e.g. BLOCK → MODEL_1); a subset of `h2d_bytes`.
    pub redistributed_bytes: u64,
}

impl TransferStats {
    /// Total bytes a naive per-offload mapping would have moved.
    pub fn requested_bytes(&self) -> u64 {
        self.h2d_bytes + self.h2d_elided_bytes + self.d2h_bytes + self.d2h_elided_bytes
    }

    /// Fraction of requested traffic that never crossed the bus, in
    /// `[0, 1]`; 0 when nothing was requested.
    pub fn elided_fraction(&self) -> f64 {
        let req = self.requested_bytes();
        if req == 0 {
            return 0.0;
        }
        (self.h2d_elided_bytes + self.d2h_elided_bytes) as f64 / req as f64
    }

    /// Merge another set of counters into this one.
    pub fn absorb(&mut self, other: &TransferStats) {
        self.h2d_bytes += other.h2d_bytes;
        self.h2d_elided_bytes += other.h2d_elided_bytes;
        self.d2h_bytes += other.d2h_bytes;
        self.d2h_elided_bytes += other.d2h_elided_bytes;
        self.redistributed_bytes += other.redistributed_bytes;
    }
}

/// Metrics for one device, computed from its trace events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceMetrics {
    /// Summed span, seconds, per [`OpKind`] (in `OpKind::ALL` order) —
    /// identical to what [`crate::trace::Breakdown::busy`] reports.
    pub busy_s: [f64; OpKind::N],
    /// Length of the union of this device's working intervals (every
    /// kind except SYNC and BACKOFF), seconds. Never exceeds the
    /// makespan, even though a device's three engines overlap.
    pub busy_union_s: f64,
    /// Length of the union of KERNEL intervals, seconds.
    pub compute_s: f64,
    /// Length of the union of H2D + D2H intervals, seconds.
    pub dma_s: f64,
    /// Seconds during which a DMA interval and a compute interval were
    /// simultaneously active on this device.
    pub overlap_s: f64,
    /// `overlap_s` over the smaller of `compute_s`/`dma_s` — the
    /// fraction of the hideable work that was actually hidden. In
    /// `[0, 1]`; 0 when the device did no compute or no DMA.
    pub overlap_fraction: f64,
    /// `busy_union_s / makespan` — fraction of the region the device
    /// spent doing anything. In `[0, 1]`.
    pub utilization: f64,
    /// Idle time inside the device's own active window (last end minus
    /// first start, minus the busy union): time work spent queued
    /// between operations, seconds.
    pub queue_wait_s: f64,
    /// End of the device's last non-SYNC event (its completion time).
    pub completion_s: f64,
    /// Bytes moved host-to-device.
    pub h2d_bytes: u64,
    /// Bytes moved device-to-host.
    pub d2h_bytes: u64,
    /// Kernel iterations executed.
    pub kernel_iters: u64,
    /// FAULT events observed (injected faults that hit this device).
    pub fault_events: u64,
    /// FAULT events broken down by [`FaultKind`], indexed by
    /// [`FaultKind::index`] in [`FaultKind::ALL`] order. Kinds are
    /// recovered from the trace label's trailing `[tag]`; events without
    /// a recognizable tag count only in `fault_events`.
    pub faults_by_kind: [u64; FaultKind::ALL.len()],
    /// BACKOFF events (retry waits after transient faults).
    pub backoff_events: u64,
    /// FAILOVER events (requeue bookkeeping paid by this survivor).
    pub failover_events: u64,
}

/// Per-device metrics for one traced region.
///
/// Built with [`Metrics::from_trace`]; tolerates traces mentioning
/// devices at or beyond the nominal `n_devices` (rows grow to fit, they
/// never panic).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Region makespan, seconds (latest event end).
    pub makespan_s: f64,
    /// One entry per device, indexed by device id.
    pub devices: Vec<DeviceMetrics>,
}

impl Metrics {
    /// Compute metrics from a trace. `n_devices` sets the minimum number
    /// of rows; devices with ids beyond it grow the vector instead of
    /// panicking.
    pub fn from_trace(trace: &Trace, n_devices: usize) -> Metrics {
        let rows = trace
            .events()
            .iter()
            .map(|e| e.device as usize + 1)
            .max()
            .unwrap_or(0)
            .max(n_devices);
        let makespan_s = trace.makespan().as_secs();
        let mut devices = vec![DeviceMetrics::default(); rows];
        let mut compute_iv: Vec<Vec<(f64, f64)>> = vec![Vec::new(); rows];
        let mut dma_iv: Vec<Vec<(f64, f64)>> = vec![Vec::new(); rows];
        let mut work_iv: Vec<Vec<(f64, f64)>> = vec![Vec::new(); rows];

        for e in trace.events() {
            let d = e.device as usize;
            let m = &mut devices[d];
            let slot = OpKind::ALL.iter().position(|k| *k == e.kind).expect("known kind");
            let (s, t) = (e.start.as_secs(), e.end.as_secs());
            m.busy_s[slot] += t - s;
            match e.kind {
                OpKind::Kernel => {
                    m.kernel_iters += e.amount;
                    compute_iv[d].push((s, t));
                }
                OpKind::H2D => {
                    m.h2d_bytes += e.amount;
                    dma_iv[d].push((s, t));
                }
                OpKind::D2H => {
                    m.d2h_bytes += e.amount;
                    dma_iv[d].push((s, t));
                }
                OpKind::Fault => {
                    m.fault_events += 1;
                    if let Some(kind) = FaultKind::from_label_suffix(trace.label(e.label)) {
                        m.faults_by_kind[kind.index()] += 1;
                    }
                }
                OpKind::Backoff => m.backoff_events += 1,
                OpKind::Failover => m.failover_events += 1,
                OpKind::Init | OpKind::Sync => {}
            }
            // Working interval: everything but barrier waits and retry
            // backoffs (neither holds a device engine busy).
            if !matches!(e.kind, OpKind::Sync | OpKind::Backoff) {
                work_iv[d].push((s, t));
                if e.kind != OpKind::Sync {
                    m.completion_s = m.completion_s.max(t);
                }
            }
        }

        for (d, m) in devices.iter_mut().enumerate() {
            let work = merge(std::mem::take(&mut work_iv[d]));
            let compute = merge(std::mem::take(&mut compute_iv[d]));
            let dma = merge(std::mem::take(&mut dma_iv[d]));
            m.busy_union_s = total_len(&work);
            m.compute_s = total_len(&compute);
            m.dma_s = total_len(&dma);
            m.overlap_s = intersection_len(&compute, &dma);
            let hideable = m.compute_s.min(m.dma_s);
            m.overlap_fraction = if hideable > 0.0 { (m.overlap_s / hideable).min(1.0) } else { 0.0 };
            m.utilization =
                if makespan_s > 0.0 { (m.busy_union_s / makespan_s).min(1.0) } else { 0.0 };
            m.queue_wait_s = match (work.first(), work.last()) {
                (Some(&(first, _)), Some(&(_, last))) => {
                    ((last - first) - m.busy_union_s).max(0.0)
                }
                _ => 0.0,
            };
        }
        Metrics { makespan_s, devices }
    }

    /// Total bytes moved host-to-device across all devices.
    pub fn total_h2d_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.h2d_bytes).sum()
    }

    /// Total bytes moved device-to-host across all devices.
    pub fn total_d2h_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.d2h_bytes).sum()
    }

    /// Total kernel iterations executed across all devices.
    pub fn total_kernel_iters(&self) -> u64 {
        self.devices.iter().map(|d| d.kernel_iters).sum()
    }

    /// Total FLOPs executed, given the kernel's per-iteration FLOP count.
    pub fn total_flops(&self, flops_per_iter: f64) -> f64 {
        self.total_kernel_iters() as f64 * flops_per_iter
    }

    /// Total fault / backoff / failover events across all devices.
    pub fn total_fault_events(&self) -> (u64, u64, u64) {
        self.devices.iter().fold((0, 0, 0), |(f, b, v), d| {
            (f + d.fault_events, b + d.backoff_events, v + d.failover_events)
        })
    }

    /// Total FAULT events per [`FaultKind`] across all devices, indexed
    /// by [`FaultKind::index`].
    pub fn fault_events_by_kind(&self) -> [u64; FaultKind::ALL.len()] {
        let mut out = [0u64; FaultKind::ALL.len()];
        for d in &self.devices {
            for (slot, n) in d.faults_by_kind.iter().enumerate() {
                out[slot] += n;
            }
        }
        out
    }

    /// The paper's load-balance ratio: max over min completion time
    /// among devices that completed any work. `1.0` with fewer than two
    /// participants.
    pub fn load_balance_ratio(&self) -> f64 {
        load_balance_ratio(self.devices.iter().map(|d| d.completion_s))
    }
}

/// Max/min completion-time ratio over the participating (non-zero)
/// completions — the Table IV/V load-balance metric. `1.0` with fewer
/// than two participants.
pub(crate) fn load_balance_ratio(completions: impl Iterator<Item = f64>) -> f64 {
    let (mut lo, mut hi, mut n) = (f64::INFINITY, 0.0f64, 0usize);
    for c in completions.filter(|c| *c > 0.0) {
        lo = lo.min(c);
        hi = hi.max(c);
        n += 1;
    }
    if n < 2 || lo <= 0.0 {
        1.0
    } else {
        hi / lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use proptest::prelude::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn counters_and_unions_from_simple_trace() {
        let mut tr = Trace::new();
        tr.record(0, OpKind::H2D, t(0.0), t(1.0), 100, "in");
        tr.record(0, OpKind::Kernel, t(0.5), t(2.5), 10, "k");
        tr.record(0, OpKind::D2H, t(2.5), t(3.0), 50, "out");
        tr.record(1, OpKind::Kernel, t(0.0), t(4.0), 7, "k");
        let m = Metrics::from_trace(&tr, 2);
        assert_eq!(m.makespan_s, 4.0);
        let d0 = &m.devices[0];
        assert_eq!(d0.h2d_bytes, 100);
        assert_eq!(d0.d2h_bytes, 50);
        assert_eq!(d0.kernel_iters, 10);
        assert_eq!(d0.compute_s, 2.0);
        assert_eq!(d0.dma_s, 1.5);
        // H2D [0,1] overlaps kernel [0.5,2.5] for 0.5 s.
        assert!((d0.overlap_s - 0.5).abs() < 1e-12);
        assert!((d0.overlap_fraction - 0.5 / 1.5).abs() < 1e-12);
        // Busy union [0,3] over makespan 4.
        assert!((d0.utilization - 0.75).abs() < 1e-12);
        assert_eq!(d0.queue_wait_s, 0.0);
        assert_eq!(d0.completion_s, 3.0);
        assert_eq!(m.total_kernel_iters(), 17);
        assert!((m.load_balance_ratio() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn queue_wait_counts_gaps_inside_active_window() {
        let mut tr = Trace::new();
        tr.record(0, OpKind::H2D, t(0.0), t(1.0), 8, "in");
        tr.record(0, OpKind::Kernel, t(2.0), t(3.0), 1, "k");
        let m = Metrics::from_trace(&tr, 1);
        assert!((m.devices[0].queue_wait_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fault_events_counted_not_busy() {
        let mut tr = Trace::new();
        tr.record(0, OpKind::Fault, t(0.0), t(1.0), 0, "dma-error");
        tr.record(0, OpKind::Backoff, t(1.0), t(1.5), 0, "retry-backoff");
        tr.record(0, OpKind::Failover, t(1.5), t(1.6), 0, "requeue");
        let m = Metrics::from_trace(&tr, 1);
        let d = &m.devices[0];
        assert_eq!((d.fault_events, d.backoff_events, d.failover_events), (1, 1, 1));
        // Backoff is excluded from the working union; fault + failover
        // hold the device.
        assert!((d.busy_union_s - 1.1).abs() < 1e-12);
    }

    #[test]
    fn fault_kinds_are_recovered_from_labels() {
        let mut tr = Trace::new();
        tr.record(0, OpKind::Fault, t(0.0), t(0.1), 0, "chunk-in [dma-error]");
        tr.record(0, OpKind::Fault, t(0.2), t(0.3), 0, "launch [launch-timeout]");
        tr.record(1, OpKind::Fault, t(0.4), t(0.5), 0, "chunk-launch [dropout]");
        tr.record(1, OpKind::Fault, t(0.6), t(0.6), 0, "axpy [slowdown]");
        tr.record(1, OpKind::Fault, t(0.7), t(0.8), 0, "untagged");
        let m = Metrics::from_trace(&tr, 2);
        assert_eq!(m.devices[0].faults_by_kind, [1, 1, 0, 0]);
        assert_eq!(m.devices[1].faults_by_kind, [0, 0, 1, 1]);
        assert_eq!(m.fault_events_by_kind(), [1, 1, 1, 1]);
        // The untagged event still counts in the aggregate tally.
        assert_eq!(m.total_fault_events().0, 5);
    }

    #[test]
    fn tolerates_devices_beyond_n_devices() {
        let mut tr = Trace::new();
        tr.record(5, OpKind::Kernel, t(0.0), t(1.0), 3, "k");
        let m = Metrics::from_trace(&tr, 2);
        assert_eq!(m.devices.len(), 6);
        assert_eq!(m.devices[5].kernel_iters, 3);
        assert_eq!(m.devices[0].kernel_iters, 0);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let m = Metrics::from_trace(&Trace::new(), 3);
        assert_eq!(m.makespan_s, 0.0);
        assert_eq!(m.devices.len(), 3);
        assert!(m.devices.iter().all(|d| d.utilization == 0.0));
        assert_eq!(m.load_balance_ratio(), 1.0);
    }

    #[test]
    fn merge_drops_non_finite_intervals_instead_of_panicking() {
        // Regression: these inputs used to reach the sort's
        // `partial_cmp(..).expect("finite interval bounds")` (NaN) or
        // leak `inf` into every downstream total (infinite bounds).
        let merged = merge(vec![
            (f64::NAN, 1.0),
            (0.0, f64::NAN),
            (f64::NAN, f64::NAN),
            (0.0, f64::INFINITY),
            (f64::NEG_INFINITY, 5.0),
            (f64::NEG_INFINITY, f64::INFINITY),
            (1.0, 2.0),
            (4.0, 5.0),
        ]);
        assert_eq!(merged, vec![(1.0, 2.0), (4.0, 5.0)]);
        assert_eq!(total_len(&merged), 2.0);
    }

    #[test]
    fn merge_of_only_non_finite_intervals_is_empty() {
        let merged = merge(vec![(f64::NAN, f64::INFINITY), (f64::INFINITY, f64::INFINITY)]);
        assert!(merged.is_empty());
        assert_eq!(total_len(&merged), 0.0);
    }

    #[test]
    fn interval_helpers() {
        let merged = merge(vec![(0.0, 1.0), (0.5, 2.0), (3.0, 4.0), (4.0, 4.0)]);
        assert_eq!(merged, vec![(0.0, 2.0), (3.0, 4.0)]);
        assert_eq!(total_len(&merged), 3.0);
        let other = merge(vec![(1.5, 3.5)]);
        assert!((intersection_len(&merged, &other) - 1.0).abs() < 1e-12);
        assert_eq!(intersection_len(&merged, &[]), 0.0);
    }

    /// Random event soup for the property tests below: bounded times,
    /// every kind, a few devices.
    fn arb_trace() -> impl Strategy<Value = Trace> {
        proptest::collection::vec(
            (0u32..4, 0usize..OpKind::N, 0.0f64..10.0, 0.0f64..2.0, 0u64..1000),
            0..40,
        )
        .prop_map(|evs| {
            let mut tr = Trace::new();
            for (dev, kind, start, len, amount) in evs {
                let kind = OpKind::ALL[kind];
                tr.record(dev, kind, t(start), t(start + len), amount, "e");
            }
            tr
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn utilization_and_overlap_are_fractions(tr in arb_trace()) {
            let m = Metrics::from_trace(&tr, 4);
            for d in &m.devices {
                prop_assert!((0.0..=1.0).contains(&d.utilization), "util {}", d.utilization);
                prop_assert!(
                    (0.0..=1.0).contains(&d.overlap_fraction),
                    "overlap {}", d.overlap_fraction
                );
                prop_assert!(d.queue_wait_s >= 0.0);
                prop_assert!(d.busy_union_s <= m.makespan_s + 1e-9);
            }
        }

        #[test]
        fn per_device_busy_matches_trace_spans(tr in arb_trace()) {
            let m = Metrics::from_trace(&tr, 4);
            let mut expect = vec![[0.0f64; OpKind::N]; m.devices.len()];
            for e in tr.events() {
                let slot = OpKind::ALL.iter().position(|k| *k == e.kind).unwrap();
                expect[e.device as usize][slot] += e.span().as_secs();
            }
            for (d, m) in m.devices.iter().enumerate() {
                for (slot, want) in expect[d].iter().enumerate() {
                    prop_assert!(
                        (m.busy_s[slot] - want).abs() < 1e-9,
                        "device {d} kind {slot}: {} vs {}", m.busy_s[slot], want
                    );
                }
            }
        }

        #[test]
        fn busy_union_never_exceeds_kind_sum(tr in arb_trace()) {
            let m = Metrics::from_trace(&tr, 4);
            for d in &m.devices {
                let sum: f64 = d.busy_s.iter().sum();
                prop_assert!(d.busy_union_s <= sum + 1e-9);
                prop_assert!(d.overlap_s <= d.compute_s.min(d.dma_s) + 1e-9);
            }
        }

        /// Inject a random mix of tagged fault events; the per-kind
        /// counters must reproduce exactly what was injected, per device
        /// and in aggregate.
        #[test]
        fn per_kind_counts_match_injected_faults(
            faults in proptest::collection::vec((0u32..4, 0usize..4, 0.0f64..10.0), 0..60)
        ) {
            let mut tr = Trace::new();
            let mut want = vec![[0u64; 4]; 4];
            for &(dev, kind_ix, start) in &faults {
                let kind = FaultKind::ALL[kind_ix];
                let label = format!("op [{}]", kind.label());
                tr.record(dev, OpKind::Fault, t(start), t(start + 0.01), 0, &label);
                want[dev as usize][kind.index()] += 1;
            }
            let m = Metrics::from_trace(&tr, 4);
            for (d, want_d) in want.iter().enumerate() {
                prop_assert_eq!(&m.devices[d].faults_by_kind, want_d, "device {}", d);
                let per_kind_sum: u64 = m.devices[d].faults_by_kind.iter().sum();
                prop_assert_eq!(per_kind_sum, m.devices[d].fault_events);
            }
            let mut total = [0u64; 4];
            for w in &want {
                for (slot, n) in w.iter().enumerate() {
                    total[slot] += n;
                }
            }
            prop_assert_eq!(m.fault_events_by_kind(), total);
        }
    }
}
