//! Device models.
//!
//! A [`DeviceDescriptor`] is the simulator's ground-truth description of
//! one computational device, mirroring what the paper's runtime reads
//! from its machine description file: device type, peak compute rate,
//! memory bandwidth, the PCIe link for accelerators, memory kind
//! (discrete vs shared vs unified) and per-offload launch overhead.
//!
//! Catalog constructors encode the evaluation machine of Section VI:
//! Xeon E5-2699 v3 sockets, NVIDIA K40 GPUs (paired on K80 cards, sharing
//! a bus group) and Intel Xeon Phi SC7120P coprocessors, using datasheet
//! numbers attenuated by a sustained-efficiency factor.

use homp_model::{DeviceParams, Hockney};

/// Identifier of a device within a [`crate::machine::Machine`] — an index
/// into the machine's device list.
pub type DeviceId = u32;

/// Kind of processor, the `dev_type_filter` of the extended `device`
/// clause (`device(0:*:HOMP_DEVICE_NVGPU)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceType {
    /// Host CPU (one socket or a combined host device).
    HostCpu,
    /// NVIDIA GPU.
    NvGpu,
    /// Intel Many Integrated Core coprocessor.
    IntelMic,
}

impl DeviceType {
    /// The HOMP source-level name of the type filter.
    pub fn homp_name(&self) -> &'static str {
        match self {
            DeviceType::HostCpu => "HOMP_DEVICE_HOSTCPU",
            DeviceType::NvGpu => "HOMP_DEVICE_NVGPU",
            DeviceType::IntelMic => "HOMP_DEVICE_ITLMIC",
        }
    }

    /// Parse a type filter name (either the full `HOMP_DEVICE_*` constant
    /// or a short alias).
    pub fn parse(s: &str) -> Option<DeviceType> {
        match s {
            "HOMP_DEVICE_HOSTCPU" | "host" | "cpu" | "HOSTCPU" => Some(DeviceType::HostCpu),
            "HOMP_DEVICE_NVGPU" | "nvgpu" | "gpu" | "NVGPU" => Some(DeviceType::NvGpu),
            "HOMP_DEVICE_ITLMIC" | "mic" | "itlmic" | "ITLMIC" => Some(DeviceType::IntelMic),
            _ => None,
        }
    }
}

impl std::fmt::Display for DeviceType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceType::HostCpu => write!(f, "host"),
            DeviceType::NvGpu => write!(f, "nvgpu"),
            DeviceType::IntelMic => write!(f, "mic"),
        }
    }
}

/// Memory relationship between a device and the host (Section V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryKind {
    /// Shares the host address space — mapping is free ("shared").
    Shared,
    /// Separate device memory — mapping copies over the link.
    Discrete,
    /// CUDA-style unified memory: shared semantics, but pages migrate on
    /// demand over the bus at a penalty (the paper measured 10–18×
    /// slowdowns and disables it by default).
    Unified,
}

impl std::fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryKind::Shared => write!(f, "shared"),
            MemoryKind::Discrete => write!(f, "discrete"),
            MemoryKind::Unified => write!(f, "unified"),
        }
    }
}

/// Host link of an accelerator: a Hockney model plus the bus group it
/// contends on (both K40s of one K80 card share one PCIe slot).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Latency/bandwidth of the link.
    pub hockney: Hockney,
    /// Devices with equal `bus_group` serialize their transfers.
    pub bus_group: u32,
}

/// Ground-truth description of one device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceDescriptor {
    /// Index within the machine.
    pub id: DeviceId,
    /// Human-readable name, e.g. `"k40-0"`.
    pub name: String,
    /// Processor kind.
    pub dev_type: DeviceType,
    /// Datasheet peak, FLOP/s (double precision).
    pub peak_flops: f64,
    /// Local memory bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Fraction of peak sustained on real kernels (0, 1].
    pub efficiency: f64,
    /// Link to host memory; `None` for host devices.
    pub link: Option<Link>,
    /// Memory kind relative to the host.
    pub memory: MemoryKind,
    /// Per-offload fixed overhead, seconds.
    pub launch_overhead: f64,
    /// Device memory capacity in bytes (shared-memory devices use the
    /// host pool).
    pub mem_capacity: u64,
    /// Number of teams the device schedules internally (CUDA SMs, CPU
    /// cores, MIC cores) — the granularity of `dist_schedule(teams:…)`.
    pub teams: u32,
}

impl DeviceDescriptor {
    /// Sustained compute rate: peak × efficiency.
    pub fn sustained_flops(&self) -> f64 {
        self.peak_flops * self.efficiency
    }

    /// Sustained memory bandwidth: datasheet peak × efficiency (STREAM
    /// never reaches the datasheet number).
    pub fn sustained_bw(&self) -> f64 {
        self.mem_bw * self.efficiency
    }

    /// Whether transfers to this device cost anything.
    pub fn needs_copy(&self) -> bool {
        matches!(self.memory, MemoryKind::Discrete)
    }

    /// Model-facing view: what `MODEL_1`/`MODEL_2` would learn about this
    /// device from perfect microbenchmark profiling.
    pub fn to_params(&self) -> DeviceParams {
        DeviceParams {
            perf_flops: self.sustained_flops(),
            mem_bw: self.sustained_bw(),
            link: if self.needs_copy() { self.link.map(|l| l.hockney) } else { None },
            launch_overhead: self.launch_overhead,
        }
    }

    /// Datasheet view: the numbers the machine description file carries
    /// and the paper's runtime feeds its models — "we would use peak
    /// performance as guideline to distribute loop iterations". The gap
    /// between datasheet and sustained behaviour is what CUTOFF corrects
    /// for (Table V).
    pub fn datasheet_params(&self) -> DeviceParams {
        DeviceParams {
            perf_flops: self.peak_flops,
            mem_bw: self.mem_bw,
            link: if self.needs_copy() { self.link.map(|l| l.hockney) } else { None },
            launch_overhead: self.launch_overhead,
        }
    }
}

/// One Xeon E5-2699 v3 socket: 18 cores × 2.3 GHz × 16 DP FLOP/cycle
/// ≈ 662 GFLOP/s, ~68 GB/s per socket.
pub fn xeon_e5_2699v3(id: DeviceId) -> DeviceDescriptor {
    DeviceDescriptor {
        id,
        name: format!("xeon-e5-2699v3-{id}"),
        dev_type: DeviceType::HostCpu,
        peak_flops: 662e9,
        mem_bw: 68e9,
        efficiency: 0.80,
        link: None,
        memory: MemoryKind::Shared,
        launch_overhead: 1e-6,
        mem_capacity: 128 << 30,
        teams: 18, // cores per socket
    }
}

/// The paper's two sockets combined into one host device (how the CUTOFF
/// ratio of 100/7 counts them).
pub fn dual_xeon_host(id: DeviceId) -> DeviceDescriptor {
    DeviceDescriptor {
        id,
        name: format!("host-2x-e5-2699v3-{id}"),
        dev_type: DeviceType::HostCpu,
        peak_flops: 2.0 * 662e9,
        mem_bw: 2.0 * 68e9,
        efficiency: 0.80,
        link: None,
        memory: MemoryKind::Shared,
        launch_overhead: 1e-6,
        mem_capacity: 256 << 30,
        teams: 36, // both sockets
    }
}

/// One NVIDIA K40 (one half of a K80 card): 1.43 TFLOP/s DP, 288 GB/s
/// GDDR5, PCIe 3.0 x16 at a measured ~10 GB/s per direction with
/// ~10 µs latency. Pass distinct `bus_group`s for independent links,
/// or a shared group to model two K40s serializing on one K80 slot
/// (the `ablation_bus` bench compares the two).
pub fn nvidia_k40(id: DeviceId, bus_group: u32) -> DeviceDescriptor {
    DeviceDescriptor {
        id,
        name: format!("k40-{id}"),
        dev_type: DeviceType::NvGpu,
        peak_flops: 1.43e12,
        mem_bw: 288e9,
        efficiency: 0.70,
        link: Some(Link { hockney: Hockney::new(10e-6, 10e9), bus_group }),
        memory: MemoryKind::Discrete,
        launch_overhead: 10e-6,
        mem_capacity: 12 << 30, // 12 GB GDDR5
        teams: 15, // SMX units
    }
}

/// One Intel Xeon Phi SC7120P: 1.21 TFLOP/s DP, 352 GB/s GDDR5, PCIe 2.0
/// x16 at ~6 GB/s. Compiler-generated offload kernels sustain a small
/// fraction of peak on KNC, and each Intel-offload transaction costs on
/// the order of a millisecond — both notorious in practice and the
/// reason CUTOFF prunes MICs in the paper's Table V.
pub fn xeon_phi_7120p(id: DeviceId, bus_group: u32) -> DeviceDescriptor {
    DeviceDescriptor {
        id,
        name: format!("phi-7120p-{id}"),
        dev_type: DeviceType::IntelMic,
        peak_flops: 1.21e12,
        mem_bw: 352e9,
        efficiency: 0.45,
        link: Some(Link { hockney: Hockney::new(20e-6, 6e9), bus_group }),
        memory: MemoryKind::Discrete,
        launch_overhead: 1e-3,
        mem_capacity: 16 << 30, // 16 GB GDDR5
        teams: 61, // in-order cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40_is_discrete_and_linked() {
        let d = nvidia_k40(0, 0);
        assert!(d.needs_copy());
        assert!(d.link.is_some());
        assert_eq!(d.dev_type, DeviceType::NvGpu);
    }

    #[test]
    fn host_params_have_no_link() {
        let d = xeon_e5_2699v3(0);
        let p = d.to_params();
        assert!(p.link.is_none());
        assert!((p.perf_flops - 662e9 * 0.8).abs() < 1.0);
    }

    #[test]
    fn sustained_below_peak() {
        for d in [xeon_e5_2699v3(0), nvidia_k40(1, 0), xeon_phi_7120p(2, 1)] {
            assert!(d.sustained_flops() < d.peak_flops);
            assert!(d.sustained_flops() > 0.0);
        }
    }

    #[test]
    fn type_names_roundtrip() {
        for t in [DeviceType::HostCpu, DeviceType::NvGpu, DeviceType::IntelMic] {
            assert_eq!(DeviceType::parse(t.homp_name()), Some(t));
        }
        assert_eq!(DeviceType::parse("gpu"), Some(DeviceType::NvGpu));
        assert_eq!(DeviceType::parse("bogus"), None);
    }

    #[test]
    fn gpu_faster_than_cpu_socket_on_paper_machine() {
        let gpu = nvidia_k40(0, 0);
        let cpu = xeon_e5_2699v3(1);
        assert!(gpu.sustained_flops() > cpu.sustained_flops());
        assert!(gpu.mem_bw > cpu.mem_bw);
    }
}
