//! Per-device memory spaces and mapping decisions.
//!
//! Section V-C: "When mapping a data region from host memory to device
//! memory, data are 'shared' between host CPU cores and/or GPUs that have
//! unified memory enabled. The mapped data are 'copied' between discrete
//! memory spaces." The [`MemorySpace`] tracks device allocations (with
//! peak accounting, so tests can assert the runtime maps only the
//! subregions a device actually needs), and [`mapping_decision`]
//! implements the copy-vs-share rule.

use crate::device::MemoryKind;
use std::collections::HashMap;

/// How a mapped variable reaches a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingDecision {
    /// The device addresses host memory directly — no transfer.
    Share,
    /// The runtime allocates device memory and copies over the link.
    Copy,
    /// Unified memory: shared semantics, paid for by on-demand page
    /// migration at `UNIFIED_PENALTY`× the explicit-copy cost.
    UnifiedMigration,
}

/// The slowdown the paper measured for unified memory against explicit
/// data movement ("maximum of 10 and 18 times slowdown in our BLAS
/// examples") — we use the geometric middle as the migration penalty.
pub const UNIFIED_PENALTY: f64 = 13.0;

/// Decide how to map host data onto a device of the given memory kind.
pub fn mapping_decision(device_memory: MemoryKind) -> MappingDecision {
    match device_memory {
        MemoryKind::Shared => MappingDecision::Share,
        MemoryKind::Discrete => MappingDecision::Copy,
        MemoryKind::Unified => MappingDecision::UnifiedMigration,
    }
}

/// Handle to one allocation in a [`MemorySpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocId(u64);

/// Error from [`MemorySpace`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryError {
    /// Allocation would exceed the space's capacity.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes currently free.
        free: u64,
    },
    /// The allocation handle is unknown (double free or wrong space).
    UnknownAllocation,
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryError::OutOfMemory { requested, free } => {
                write!(f, "out of device memory: requested {requested} bytes, {free} free")
            }
            MemoryError::UnknownAllocation => write!(f, "unknown allocation handle"),
        }
    }
}

impl std::error::Error for MemoryError {}

/// Byte-accounting model of one device's memory. It does not store
/// data — the actual array contents live host-side in the runtime — it
/// enforces capacity and records footprints.
#[derive(Debug, Clone)]
pub struct MemorySpace {
    capacity: u64,
    in_use: u64,
    peak: u64,
    next_id: u64,
    live: HashMap<u64, u64>,
    total_allocs: u64,
}

impl MemorySpace {
    /// A space holding at most `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self { capacity, in_use: 0, peak: 0, next_id: 0, live: HashMap::new(), total_allocs: 0 }
    }

    /// Allocate `bytes`.
    pub fn alloc(&mut self, bytes: u64) -> Result<AllocId, MemoryError> {
        let free = self.capacity - self.in_use;
        if bytes > free {
            return Err(MemoryError::OutOfMemory { requested: bytes, free });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(id, bytes);
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        self.total_allocs += 1;
        Ok(AllocId(id))
    }

    /// Free a previous allocation.
    pub fn free(&mut self, id: AllocId) -> Result<(), MemoryError> {
        match self.live.remove(&id.0) {
            Some(bytes) => {
                self.in_use -= bytes;
                Ok(())
            }
            None => Err(MemoryError::UnknownAllocation),
        }
    }

    /// Resize a live allocation in place — the repartitioning path of a
    /// persistent data region, where a resident array's per-device share
    /// grows or shrinks between offloads without a free/alloc round trip
    /// (the handle and the allocation's identity survive). Fails without
    /// side effects if growth would exceed capacity or the handle is
    /// unknown.
    pub fn realloc(&mut self, id: AllocId, bytes: u64) -> Result<(), MemoryError> {
        let Some(&old) = self.live.get(&id.0) else {
            return Err(MemoryError::UnknownAllocation);
        };
        let free = self.capacity - self.in_use;
        if bytes > old && bytes - old > free {
            return Err(MemoryError::OutOfMemory { requested: bytes - old, free });
        }
        self.live.insert(id.0, bytes);
        self.in_use = self.in_use - old + bytes;
        self.peak = self.peak.max(self.in_use);
        Ok(())
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark of allocated bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.live.len()
    }

    /// Total allocations ever made.
    pub fn total_allocations(&self) -> u64 {
        self.total_allocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn decisions_follow_memory_kind() {
        assert_eq!(mapping_decision(MemoryKind::Shared), MappingDecision::Share);
        assert_eq!(mapping_decision(MemoryKind::Discrete), MappingDecision::Copy);
        assert_eq!(mapping_decision(MemoryKind::Unified), MappingDecision::UnifiedMigration);
    }

    #[test]
    fn alloc_free_accounting() {
        let mut m = MemorySpace::new(1000);
        let a = m.alloc(400).unwrap();
        let b = m.alloc(500).unwrap();
        assert_eq!(m.in_use(), 900);
        assert_eq!(m.peak(), 900);
        m.free(a).unwrap();
        assert_eq!(m.in_use(), 500);
        assert_eq!(m.peak(), 900, "peak is sticky");
        m.free(b).unwrap();
        assert_eq!(m.in_use(), 0);
        assert_eq!(m.live_allocations(), 0);
    }

    #[test]
    fn oom_reports_free_bytes() {
        let mut m = MemorySpace::new(100);
        m.alloc(90).unwrap();
        let err = m.alloc(20).unwrap_err();
        assert_eq!(err, MemoryError::OutOfMemory { requested: 20, free: 10 });
    }

    #[test]
    fn double_free_detected() {
        let mut m = MemorySpace::new(100);
        let a = m.alloc(10).unwrap();
        m.free(a).unwrap();
        assert_eq!(m.free(a), Err(MemoryError::UnknownAllocation));
    }

    #[test]
    fn realloc_grows_and_shrinks() {
        let mut m = MemorySpace::new(100);
        let a = m.alloc(40).unwrap();
        m.realloc(a, 70).unwrap();
        assert_eq!(m.in_use(), 70);
        assert_eq!(m.peak(), 70);
        m.realloc(a, 10).unwrap();
        assert_eq!(m.in_use(), 10);
        assert_eq!(m.peak(), 70, "peak is sticky");
        // Growth past capacity fails and leaves accounting untouched.
        let err = m.realloc(a, 200).unwrap_err();
        assert_eq!(err, MemoryError::OutOfMemory { requested: 190, free: 90 });
        assert_eq!(m.in_use(), 10);
        m.free(a).unwrap();
        assert_eq!(m.realloc(a, 5), Err(MemoryError::UnknownAllocation));
    }

    #[test]
    fn zero_byte_alloc_is_fine() {
        let mut m = MemorySpace::new(0);
        let a = m.alloc(0).unwrap();
        m.free(a).unwrap();
    }

    proptest! {
        /// in_use equals the sum of live allocation sizes under any
        /// interleaving of allocs and frees.
        #[test]
        fn accounting_invariant(ops in proptest::collection::vec(0u64..10_000, 1..50)) {
            let mut m = MemorySpace::new(u64::MAX);
            let mut live: Vec<(AllocId, u64)> = Vec::new();
            let mut expected = 0u64;
            for (i, sz) in ops.iter().enumerate() {
                if i % 3 == 2 && !live.is_empty() {
                    let (id, sz) = live.remove(i % live.len());
                    m.free(id).unwrap();
                    expected -= sz;
                } else {
                    let id = m.alloc(*sz).unwrap();
                    live.push((id, *sz));
                    expected += sz;
                }
                prop_assert_eq!(m.in_use(), expected);
                prop_assert!(m.peak() >= m.in_use());
            }
        }
    }
}
