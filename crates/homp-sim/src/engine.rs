//! The simulation engine.
//!
//! A resource-calendar discrete-event simulator: every device owns two
//! resources — a *compute engine* and a *DMA engine* — and accelerators
//! additionally contend on a shared *bus group* (the two K40s of one K80
//! card share a PCIe slot). Submitting an operation reserves the
//! resource from `max(ready, resource free)` for the operation's
//! modelled duration and returns the completion instant. Because
//! operation durations never depend on future decisions, this computes
//! exactly the schedule an event-queue simulator would, deterministically
//! and in O(ops).
//!
//! The separation of DMA and compute engines — with *separate upload
//! and download engines* per device, since PCIe is full duplex — is
//! what lets dynamic chunking overlap data movement with computation
//! and drain output chunks while later inputs stream in (the effect
//! behind SCHED_DYNAMIC's wins on data-intensive kernels in Fig. 5);
//! the `overlap` switch exists so the ablation bench can turn it off.

use crate::device::{DeviceId, MemoryKind};
use crate::fault::{Fault, FaultKind, FaultPlan};
use crate::machine::Machine;
use crate::memory::UNIFIED_PENALTY;
use crate::noise::NoiseModel;
use crate::time::{SimSpan, SimTime};
use crate::trace::{OpKind, Trace, TraceLevel};
use homp_model::roofline::{attainable_rate, KernelIntensity};
use std::cell::RefCell;

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Host to device.
    H2D,
    /// Device to host.
    D2H,
}

/// Lane of a direction within the flat bus calendar (H2D = 0, D2H = 1).
#[inline]
fn dir_lane(dir: Dir) -> usize {
    match dir {
        Dir::H2D => 0,
        Dir::D2H => 1,
    }
}

/// Within-device scheduling of a chunk among the device's teams
/// (`dist_schedule(teams: …)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TeamSched {
    /// Model the device as one aggregate resource (the default — the
    /// between-device figures of the paper use this).
    #[default]
    Aggregate,
    /// Static even split among teams: the chunk finishes with its
    /// slowest team.
    Block,
    /// Dynamic within-device chunking: teams grab sub-chunks, smoothing
    /// internal noise at the cost of the scheduling machinery.
    Dynamic,
}

/// A unit of kernel work: `iters` iterations of a loop with the given
/// per-iteration intensity.
#[derive(Debug, Clone, Copy)]
pub struct ChunkWork<'a> {
    /// Number of loop iterations.
    pub iters: u64,
    /// Per-iteration cost descriptor.
    pub intensity: &'a KernelIntensity,
    /// Relative cost multiplier of this chunk against the uniform
    /// intensity (1.0 = uniform). Irregular loops — the motivation for
    /// dynamic chunking in §IV-A.2 — give later/heavier chunks larger
    /// weights via [`crate::engine::ChunkWork::weighted`].
    pub weight: f64,
}

impl<'a> ChunkWork<'a> {
    /// Uniform-cost chunk.
    pub fn new(iters: u64, intensity: &'a KernelIntensity) -> Self {
        Self { iters, intensity, weight: 1.0 }
    }

    /// Scale this chunk's compute cost by `weight`.
    pub fn weighted(mut self, weight: f64) -> Self {
        assert!(weight.is_finite() && weight >= 0.0, "weight must be >= 0, got {weight}");
        self.weight = weight;
        self
    }
}

/// The simulator. One instance simulates one machine; [`Engine::reset`]
/// rewinds the clock between offload regions while keeping the machine.
#[derive(Debug, Clone)]
pub struct Engine {
    machine: Machine,
    noise: NoiseModel,
    /// Whether DMA and compute may overlap (true mirrors real hardware).
    pub overlap: bool,
    compute_free: Vec<SimTime>,
    h2d_free: Vec<SimTime>,
    d2h_free: Vec<SimTime>,
    /// Flat per-(bus group, direction) calendar: slot
    /// `bus_idx[dev] * 2 + dir_lane(dir)`. Replaces a
    /// `HashMap<(u32, Dir), SimTime>` that was probed and re-inserted
    /// on every transfer — two SipHash rounds on the hottest path.
    bus_free: Vec<SimTime>,
    /// Dense bus slot per device, assigned in first-appearance order
    /// over the machine's devices at construction (machine description
    /// files may use sparse, arbitrary group ids). `u32::MAX` marks a
    /// linkless device, which never reaches the bus path.
    bus_idx: Vec<u32>,
    op_seq: Vec<u64>,
    launch_seq: Vec<u64>,
    faults: FaultPlan,
    trace: Trace,
    /// Operations submitted over the engine's lifetime (monotone
    /// telemetry; see [`Engine::ops_submitted`]).
    ops: u64,
    /// Reusable per-team accumulator for [`TeamSched::Dynamic`]
    /// pricing — `compute_span_at` is `&self` (shared with the peek
    /// path), so the scratch lives in a `RefCell` instead of
    /// allocating a fresh `Vec` per priced chunk.
    team_scratch: RefCell<Vec<f64>>,
}

impl Engine {
    /// New engine over `machine` with the given noise model.
    pub fn new(machine: Machine, noise: NoiseModel) -> Self {
        let n = machine.len();
        // Dense bus slots: one per distinct group id, in the order the
        // devices first mention them.
        let mut groups: Vec<u32> = Vec::new();
        let bus_idx: Vec<u32> = machine
            .devices
            .iter()
            .map(|d| match d.link {
                Some(l) => match groups.iter().position(|&g| g == l.bus_group) {
                    Some(i) => i as u32,
                    None => {
                        groups.push(l.bus_group);
                        (groups.len() - 1) as u32
                    }
                },
                None => u32::MAX,
            })
            .collect();
        Self {
            machine,
            noise,
            overlap: true,
            compute_free: vec![SimTime::ZERO; n],
            h2d_free: vec![SimTime::ZERO; n],
            d2h_free: vec![SimTime::ZERO; n],
            bus_free: vec![SimTime::ZERO; groups.len() * 2],
            bus_idx,
            op_seq: vec![0; n],
            launch_seq: vec![0; n],
            faults: FaultPlan::none(),
            trace: Trace::new(),
            ops: 0,
            team_scratch: RefCell::new(Vec::new()),
        }
    }

    /// Convenience: noiseless engine (exactness tests, ablations).
    pub fn noiseless(machine: Machine) -> Self {
        Self::new(machine, NoiseModel::disabled())
    }

    /// The simulated machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.machine.len()
    }

    /// Rewind the clock and clear the trace; noise sequence numbers also
    /// restart so a reset engine replays identically.
    pub fn reset(&mut self) {
        for t in &mut self.compute_free {
            *t = SimTime::ZERO;
        }
        for t in &mut self.h2d_free {
            *t = SimTime::ZERO;
        }
        for t in &mut self.d2h_free {
            *t = SimTime::ZERO;
        }
        for t in &mut self.bus_free {
            *t = SimTime::ZERO;
        }
        for s in &mut self.op_seq {
            *s = 0;
        }
        for s in &mut self.launch_seq {
            *s = 0;
        }
        self.trace.clear();
    }

    /// [`Engine::reset`] plus a reseed of the noise model (amplitude
    /// kept): after this call the engine replays exactly as a freshly
    /// built `Engine::new(machine, NoiseModel::new(seed, amplitude))` —
    /// no machine clone, no calendar reallocation. This is what lets a
    /// multi-seed experiment loop reuse one engine.
    pub fn reset_with_seed(&mut self, seed: u64) {
        self.reset();
        self.noise.reseed(seed);
    }

    /// Install a fault plan. Only the fault-checked `try_*` entry points
    /// consult it; the plain infallible methods (used by profiling and
    /// halo exchange) behave identically with or without a plan. A
    /// scripted dropout applies per offload region: [`Engine::reset`]
    /// rewinds the clock, so the device fails again at the same virtual
    /// time in the next region.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The installed fault plan ([`FaultPlan::none`] by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Recorded trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Take ownership of the trace, leaving an empty one recording at
    /// the same [`TraceLevel`] (a plain `mem::take` would silently
    /// reset a throughput run back to `Full`).
    pub fn take_trace(&mut self) -> Trace {
        let level = self.trace.level();
        std::mem::replace(&mut self.trace, Trace::with_level(level))
    }

    /// Set the trace recording level (see [`TraceLevel`]). The virtual
    /// clock, noise draw order, and every returned completion instant
    /// are identical at all levels — only what lands in the trace
    /// changes.
    pub fn set_trace_level(&mut self, level: TraceLevel) {
        self.trace.set_level(level);
    }

    /// Current trace recording level.
    pub fn trace_level(&self) -> TraceLevel {
        self.trace.level()
    }

    /// Operations submitted to the engine since it was built: every
    /// transfer, kernel, launch, fault marker, backoff, failover and
    /// sync wait — exactly the events a full-level trace would hold.
    /// Unlike the trace, the counter survives [`Engine::reset`] and
    /// [`Engine::take_trace`] (it is cumulative telemetry, not replay
    /// state), so throughput harnesses can read one number across a
    /// whole multi-offload run.
    pub fn ops_submitted(&self) -> u64 {
        self.ops
    }

    /// Count one submitted operation and append it to the trace
    /// (subject to the trace's recording level).
    #[inline]
    fn record_op(
        &mut self,
        dev: DeviceId,
        kind: OpKind,
        start: SimTime,
        end: SimTime,
        amount: u64,
        label: &str,
    ) {
        self.ops += 1;
        self.trace.record(dev, kind, start, end, amount, label);
    }

    /// When the device's compute engine is next free.
    pub fn compute_free_at(&self, dev: DeviceId) -> SimTime {
        self.compute_free[dev as usize]
    }

    /// When the device's DMA engines are both next free (upload and
    /// download engines are separate — PCIe is full duplex).
    pub fn dma_free_at(&self, dev: DeviceId) -> SimTime {
        self.h2d_free[dev as usize].max(self.d2h_free[dev as usize])
    }

    #[inline]
    fn next_seq(&mut self, dev: DeviceId) -> u64 {
        let s = &mut self.op_seq[dev as usize];
        *s += 1;
        *s
    }

    /// Noiseless ground-truth duration of `work` on `dev` — the value
    /// noise perturbs, exposed for tests and the profiling module.
    #[inline]
    pub fn pure_compute_span(&self, dev: DeviceId, work: &ChunkWork<'_>) -> SimSpan {
        let d = &self.machine.devices[dev as usize];
        let rate = attainable_rate(work.intensity, d.sustained_flops(), d.sustained_bw());
        SimSpan::from_secs(work.iters as f64 * work.intensity.flops_per_iter * work.weight / rate)
    }

    /// Noiseless ground-truth duration of a `bytes`-byte transfer.
    #[inline]
    pub fn pure_transfer_span(&self, dev: DeviceId, bytes: u64) -> SimSpan {
        let d = &self.machine.devices[dev as usize];
        match (d.memory, d.link) {
            (MemoryKind::Shared, _) | (_, None) => SimSpan::ZERO,
            (MemoryKind::Discrete, Some(l)) => SimSpan::from_secs(l.hockney.time(bytes as f64)),
            (MemoryKind::Unified, Some(l)) => {
                SimSpan::from_secs(l.hockney.time(bytes as f64) * UNIFIED_PENALTY)
            }
        }
    }

    /// Submit a data transfer that may begin at `ready`. Returns the
    /// completion instant. Shared-memory devices return `ready`
    /// immediately and record nothing (mapping is free). Never consults
    /// the fault plan; see [`Engine::try_transfer`].
    pub fn transfer(
        &mut self,
        dev: DeviceId,
        bytes: u64,
        dir: Dir,
        ready: SimTime,
        label: &str,
    ) -> SimTime {
        match self.transfer_impl(dev, bytes, dir, ready, label, false) {
            Ok(t) => t,
            Err(_) => unreachable!("faults are not checked"),
        }
    }

    /// Fault-checked variant of [`Engine::transfer`]: consults the
    /// installed [`FaultPlan`] for transient DMA errors and device
    /// dropout. On a fault, the time burned by the failed attempt is
    /// charged to the device's engines, a FAULT event is recorded, and
    /// the returned [`Fault`] carries the detection instant.
    pub fn try_transfer(
        &mut self,
        dev: DeviceId,
        bytes: u64,
        dir: Dir,
        ready: SimTime,
        label: &str,
    ) -> Result<SimTime, Fault> {
        self.transfer_impl(dev, bytes, dir, ready, label, true)
    }

    /// Release the transfer resources a (possibly failed) transfer held
    /// until `end`. `bus_slot` is the flat calendar slot computed by
    /// [`Engine::transfer_impl`].
    #[inline]
    fn commit_transfer(&mut self, dev: DeviceId, dir: Dir, bus_slot: usize, end: SimTime) {
        match dir {
            Dir::H2D => self.h2d_free[dev as usize] = end,
            Dir::D2H => self.d2h_free[dev as usize] = end,
        }
        if !self.overlap {
            self.h2d_free[dev as usize] = self.h2d_free[dev as usize].max(end);
            self.d2h_free[dev as usize] = self.d2h_free[dev as usize].max(end);
        }
        self.bus_free[bus_slot] = end;
        if !self.overlap {
            self.compute_free[dev as usize] = self.compute_free[dev as usize].max(end);
        }
    }

    fn transfer_impl(
        &mut self,
        dev: DeviceId,
        bytes: u64,
        dir: Dir,
        ready: SimTime,
        label: &str,
        check_faults: bool,
    ) -> Result<SimTime, Fault> {
        let span = self.pure_transfer_span(dev, bytes);
        if span == SimSpan::ZERO {
            return Ok(ready);
        }
        let seq = self.next_seq(dev);
        let jitter = self.noise.factor(dev, seq);
        let mut span = span.scale(jitter);

        // A nonzero span implies a linked device (shared/linkless
        // devices short-circuit above), so the slot is always dense.
        let bi = self.bus_idx[dev as usize];
        debug_assert_ne!(bi, u32::MAX, "non-shared device has a link");
        let bus_slot = bi as usize * 2 + dir_lane(dir);
        let bus_free = self.bus_free[bus_slot];
        let engine_free = match dir {
            Dir::H2D => self.h2d_free[dev as usize],
            Dir::D2H => self.d2h_free[dev as usize],
        };
        let mut start = ready.max(engine_free).max(bus_free);
        if !self.overlap {
            // Ablation mode: the device cannot move data while computing,
            // and uses a single half-duplex DMA engine.
            start = start
                .max(self.compute_free[dev as usize])
                .max(self.h2d_free[dev as usize])
                .max(self.d2h_free[dev as usize]);
        }
        if check_faults {
            // Degraded mode: stretch the transfer and leave a zero-length
            // marker so the slowdown is visible in the trace.
            let stretch = self.faults.slowdown_factor(dev, start);
            if stretch != 1.0 {
                span = span.scale(stretch);
                self.record_op(
                    dev,
                    OpKind::Fault,
                    start,
                    start,
                    0,
                    &format!("{label} [slowdown]"),
                );
            }
        }
        let end = start + span;
        if check_faults {
            if let Some(tf) = self.faults.dropout_at(dev, start, end) {
                if tf == start {
                    // The device is already gone; the proxy discovers it
                    // the moment it tries to submit.
                    self.record_op(
                        dev,
                        OpKind::Fault,
                        start,
                        start,
                        0,
                        &format!("{label} [dropout]"),
                    );
                    return Err(Fault { device: dev, kind: FaultKind::Dropout, at: start });
                }
                // The transfer dies mid-flight; bus and engine are
                // held until the failure instant.
                self.commit_transfer(dev, dir, bus_slot, tf);
                self.record_op(
                    dev,
                    OpKind::Fault,
                    start,
                    tf,
                    bytes,
                    &format!("{label} [dropout]"),
                );
                return Err(Fault { device: dev, kind: FaultKind::Dropout, at: tf });
            }
            if self.faults.dma_fault_at(dev, seq, start) {
                let latency = self
                    .faults
                    .device(dev)
                    .map(|p| SimSpan::from_secs(p.dma_error_latency))
                    .unwrap_or(SimSpan::ZERO);
                let fail_end = start + latency;
                self.commit_transfer(dev, dir, bus_slot, fail_end);
                self.record_op(
                    dev,
                    OpKind::Fault,
                    start,
                    fail_end,
                    bytes,
                    &format!("{label} [dma-error]"),
                );
                return Err(Fault { device: dev, kind: FaultKind::TransientDma, at: fail_end });
            }
        }
        self.commit_transfer(dev, dir, bus_slot, end);
        let kind = match dir {
            Dir::H2D => OpKind::H2D,
            Dir::D2H => OpKind::D2H,
        };
        self.record_op(dev, kind, start, end, bytes, label);
        Ok(end)
    }

    /// Submit kernel work that may begin at `ready` (typically the
    /// completion of its input transfer). Returns the completion instant.
    pub fn compute(
        &mut self,
        dev: DeviceId,
        work: &ChunkWork<'_>,
        ready: SimTime,
        label: &str,
    ) -> SimTime {
        self.compute_teams(dev, work, ready, label, TeamSched::Aggregate)
    }

    /// Fault-checked variant of [`Engine::compute`].
    pub fn try_compute(
        &mut self,
        dev: DeviceId,
        work: &ChunkWork<'_>,
        ready: SimTime,
        label: &str,
    ) -> Result<SimTime, Fault> {
        self.try_compute_teams(dev, work, ready, label, TeamSched::Aggregate)
    }

    /// Like [`Engine::compute`], but modelling the *within-device*
    /// distribution among the device's teams — the
    /// `dist_schedule(teams: …)` level of the paper's extension. Each
    /// team draws its own noise, so static team distribution exposes the
    /// device's internal imbalance (the chunk finishes when its slowest
    /// team does), while dynamic team scheduling smooths it.
    pub fn compute_teams(
        &mut self,
        dev: DeviceId,
        work: &ChunkWork<'_>,
        ready: SimTime,
        label: &str,
        sched: TeamSched,
    ) -> SimTime {
        match self.compute_teams_impl(dev, work, ready, label, sched, false) {
            Ok(t) => t,
            Err(_) => unreachable!("faults are not checked"),
        }
    }

    /// Fault-checked variant of [`Engine::compute_teams`]: consults the
    /// installed [`FaultPlan`] for device dropout (kernels on a dead
    /// device fail at the dropout instant).
    pub fn try_compute_teams(
        &mut self,
        dev: DeviceId,
        work: &ChunkWork<'_>,
        ready: SimTime,
        label: &str,
        sched: TeamSched,
    ) -> Result<SimTime, Fault> {
        self.compute_teams_impl(dev, work, ready, label, sched, true)
    }

    fn compute_teams_impl(
        &mut self,
        dev: DeviceId,
        work: &ChunkWork<'_>,
        ready: SimTime,
        label: &str,
        sched: TeamSched,
        check_faults: bool,
    ) -> Result<SimTime, Fault> {
        if work.iters == 0 {
            return Ok(ready);
        }
        let seq = self.next_seq(dev);
        let mut span = self.compute_span_at(dev, work, seq, sched);
        let start = ready.max(self.compute_free[dev as usize]);
        if check_faults {
            let stretch = self.faults.slowdown_factor(dev, start);
            if stretch != 1.0 {
                span = span.scale(stretch);
                self.record_op(
                    dev,
                    OpKind::Fault,
                    start,
                    start,
                    0,
                    &format!("{label} [slowdown]"),
                );
            }
        }
        let end = start + span;
        if check_faults {
            if let Some(fault) = self.dropout_check(dev, start, end, work.iters, label) {
                return Err(fault);
            }
        }
        self.compute_free[dev as usize] = end;
        if !self.overlap {
            self.h2d_free[dev as usize] = self.h2d_free[dev as usize].max(end);
            self.d2h_free[dev as usize] = self.d2h_free[dev as usize].max(end);
        }
        self.record_op(dev, OpKind::Kernel, start, end, work.iters, label);
        Ok(end)
    }

    /// The noisy duration the compute op with sequence number `seq`
    /// gets on `dev` — the pricing shared by the committing path and
    /// [`Engine::peek_compute_end`].
    fn compute_span_at(
        &self,
        dev: DeviceId,
        work: &ChunkWork<'_>,
        seq: u64,
        sched: TeamSched,
    ) -> SimSpan {
        match sched {
            TeamSched::Aggregate => {
                let jitter = self.noise.factor(dev, seq);
                self.pure_compute_span(dev, work).scale(jitter)
            }
            TeamSched::Block => {
                // Even split over teams; per-team rate = aggregate/teams;
                // the chunk completes when the slowest team does.
                let teams = self.machine.devices[dev as usize].teams.max(1) as u64;
                let pure = self.pure_compute_span(dev, work).as_secs();
                let per_iter = pure / work.iters as f64 * teams as f64;
                let base = work.iters / teams;
                let rem = work.iters % teams;
                let mut worst: f64 = 0.0;
                for t in 0..teams {
                    let iters_t = base + u64::from(t < rem);
                    let jitter =
                        self.noise.factor(dev, seq.wrapping_mul(1031).wrapping_add(t));
                    worst = worst.max(iters_t as f64 * per_iter * jitter);
                }
                SimSpan::from_secs(worst)
            }
            TeamSched::Dynamic => {
                // Greedy within-device chunk queue: 8 sub-chunks per team,
                // each grabbed by the least-loaded team.
                let teams = self.machine.devices[dev as usize].teams.max(1) as u64;
                let pure = self.pure_compute_span(dev, work).as_secs();
                let per_iter = pure / work.iters as f64 * teams as f64;
                let subchunks = teams * 8;
                let mut team_free = self.team_scratch.borrow_mut();
                team_free.clear();
                team_free.resize(teams as usize, 0.0);
                let base = work.iters / subchunks;
                let rem = work.iters % subchunks;
                for c in 0..subchunks {
                    let iters_c = base + u64::from(c < rem);
                    if iters_c == 0 {
                        continue;
                    }
                    let jitter =
                        self.noise.factor(dev, seq.wrapping_mul(2053).wrapping_add(c));
                    let (slot, _) = team_free
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                        .expect("at least one team");
                    team_free[slot] += iters_c as f64 * per_iter * jitter;
                }
                let worst = team_free.iter().fold(0.0f64, |a, &b| a.max(b));
                SimSpan::from_secs(worst)
            }
        }
    }

    /// Price `dev`'s *next* compute op without committing anything:
    /// the completion instant [`Engine::try_compute_teams`] would
    /// return for the same arguments right now — same noise draw
    /// (the next op consumes sequence number `op_seq + 1` either
    /// way), same team schedule, same calendar state. Faults are not
    /// consulted: this is the proxy's *prediction*, used by the
    /// work-assisting scheduler to decide steals before it commits.
    /// Exact as long as no other op commits on `dev` in between.
    pub fn peek_compute_end(
        &self,
        dev: DeviceId,
        work: &ChunkWork<'_>,
        ready: SimTime,
        sched: TeamSched,
    ) -> SimTime {
        if work.iters == 0 {
            return ready;
        }
        let seq = self.op_seq[dev as usize] + 1;
        let span = self.compute_span_at(dev, work, seq, sched);
        let start = ready.max(self.compute_free[dev as usize]);
        // Mirror the committing path's degraded-mode stretch so the
        // assist scheduler's predictions stay exact under slowdown
        // windows (factor is 1.0 without a plan).
        start + span.scale(self.faults.slowdown_factor(dev, start))
    }

    /// Dropout check shared by compute and launch: an operation that
    /// would start during the scripted outage fails at submission; one
    /// that straddles the dropout holds the compute engine until the
    /// failure instant and fails there. Operations starting at or after
    /// a scripted recovery succeed again.
    fn dropout_check(
        &mut self,
        dev: DeviceId,
        start: SimTime,
        end: SimTime,
        amount: u64,
        label: &str,
    ) -> Option<Fault> {
        let tf = self.faults.dropout_at(dev, start, end)?;
        if tf == start {
            self.record_op(dev, OpKind::Fault, start, start, 0, &format!("{label} [dropout]"));
            return Some(Fault { device: dev, kind: FaultKind::Dropout, at: start });
        }
        self.compute_free[dev as usize] = tf;
        self.record_op(dev, OpKind::Fault, start, tf, amount, &format!("{label} [dropout]"));
        Some(Fault { device: dev, kind: FaultKind::Dropout, at: tf })
    }

    /// Pay the device's per-offload launch/bookkeeping overhead starting
    /// no earlier than `ready`. Recorded as INIT. Never consults the
    /// fault plan; see [`Engine::try_launch`].
    pub fn launch(&mut self, dev: DeviceId, ready: SimTime, label: &str) -> SimTime {
        match self.launch_impl(dev, ready, label, false) {
            Ok(t) => t,
            Err(_) => unreachable!("faults are not checked"),
        }
    }

    /// Fault-checked variant of [`Engine::launch`]: consults the
    /// installed [`FaultPlan`] for launch timeouts and device dropout.
    /// A timed-out launch holds the compute engine until the watchdog
    /// fires, then fails.
    pub fn try_launch(&mut self, dev: DeviceId, ready: SimTime, label: &str) -> Result<SimTime, Fault> {
        self.launch_impl(dev, ready, label, true)
    }

    fn launch_impl(
        &mut self,
        dev: DeviceId,
        ready: SimTime,
        label: &str,
        check_faults: bool,
    ) -> Result<SimTime, Fault> {
        let d = &self.machine.devices[dev as usize];
        let span = SimSpan::from_secs(d.launch_overhead);
        let start = ready.max(self.compute_free[dev as usize]);
        let end = start + span;
        // Launches draw from their own sequence counter (not the noise
        // sequence), so installing a plan never perturbs jitter draws.
        let lseq = {
            let s = &mut self.launch_seq[dev as usize];
            *s += 1;
            *s
        };
        if check_faults {
            if let Some(fault) = self.dropout_check(dev, start, end, 0, label) {
                return Err(fault);
            }
            if self.faults.launch_fault_at(dev, lseq, start) {
                let latency = self
                    .faults
                    .device(dev)
                    .map(|p| SimSpan::from_secs(p.timeout_latency))
                    .unwrap_or(SimSpan::ZERO);
                let fail_end = start + latency;
                self.compute_free[dev as usize] = fail_end;
                self.record_op(
                    dev,
                    OpKind::Fault,
                    start,
                    fail_end,
                    0,
                    &format!("{label} [launch-timeout]"),
                );
                return Err(Fault { device: dev, kind: FaultKind::LaunchTimeout, at: fail_end });
            }
        }
        self.compute_free[dev as usize] = end;
        self.record_op(dev, OpKind::Init, start, end, 0, label);
        Ok(end)
    }

    /// Record a retry backoff on `dev`'s proxy: no device resource is
    /// held (the proxy simply waits), a BACKOFF event is traced, and
    /// the instant the retry may begin is returned.
    pub fn record_backoff(
        &mut self,
        dev: DeviceId,
        from: SimTime,
        span: SimSpan,
        label: &str,
    ) -> SimTime {
        let end = from + span;
        self.record_op(dev, OpKind::Backoff, from, end, 0, label);
        end
    }

    /// Record failover bookkeeping on a surviving device picking up
    /// re-queued work: charges the compute engine like a launch and
    /// records a FAILOVER event.
    pub fn record_failover(
        &mut self,
        dev: DeviceId,
        from: SimTime,
        span: SimSpan,
        label: &str,
    ) -> SimTime {
        let start = from.max(self.compute_free[dev as usize]);
        let end = start + span;
        self.compute_free[dev as usize] = end;
        self.record_op(dev, OpKind::Failover, start, end, 0, label);
        end
    }

    /// Barrier across devices: every device waits until the last one's
    /// `completion`. Records a SYNC event per waiting device and returns
    /// the barrier release time. `completions[i]` is the completion time
    /// of `devices[i]`.
    pub fn barrier(&mut self, devices: &[DeviceId], completions: &[SimTime]) -> SimTime {
        assert_eq!(devices.len(), completions.len());
        let release = completions.iter().copied().max().unwrap_or(SimTime::ZERO);
        for (&d, &c) in devices.iter().zip(completions) {
            if release > c {
                self.record_op(d, OpKind::Sync, c, release, 0, "barrier");
            }
            self.compute_free[d as usize] = self.compute_free[d as usize].max(release);
            self.h2d_free[d as usize] = self.h2d_free[d as usize].max(release);
            self.d2h_free[d as usize] = self.d2h_free[d as usize].max(release);
        }
        release
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    fn axpy_intensity() -> KernelIntensity {
        KernelIntensity {
            flops_per_iter: 2.0,
            mem_elems_per_iter: 3.0,
            data_elems_per_iter: 3.0,
            elem_bytes: 8.0,
        }
    }

    #[test]
    fn transfer_then_compute_serializes_per_chunk() {
        let mut e = Engine::noiseless(Machine::four_k40());
        let k = axpy_intensity();
        let t1 = e.transfer(0, 1_000_000, Dir::H2D, SimTime::ZERO, "x");
        let t2 = e.compute(0, &ChunkWork::new(100_000, &k), t1, "axpy");
        assert!(t2 > t1);
        assert!(t1 > SimTime::ZERO);
    }

    #[test]
    fn host_transfers_are_free() {
        let mut e = Engine::noiseless(Machine::two_cpus_two_mics());
        let t = e.transfer(0, 1 << 30, Dir::H2D, SimTime::from_secs(1.0), "x");
        assert_eq!(t, SimTime::from_secs(1.0));
        assert!(e.trace().is_empty());
    }

    #[test]
    fn dma_overlaps_compute_when_enabled() {
        let mut e = Engine::noiseless(Machine::four_k40());
        let k = axpy_intensity();
        // Start a long compute, then a transfer for the *next* chunk: it
        // should start immediately, not after the compute.
        let c_end = e.compute(0, &ChunkWork::new(20_000_000, &k), SimTime::ZERO, "k0");
        let x_end = e.transfer(0, 4_000_000, Dir::H2D, SimTime::ZERO, "x1");
        assert!(x_end < c_end, "transfer {x_end} should finish inside compute {c_end}");
    }

    #[test]
    fn no_overlap_mode_serializes() {
        let mut e = Engine::noiseless(Machine::four_k40());
        e.overlap = false;
        let k = axpy_intensity();
        let c_end = e.compute(0, &ChunkWork::new(10_000_000, &k), SimTime::ZERO, "k0");
        let x_end = e.transfer(0, 8_000_000, Dir::H2D, SimTime::ZERO, "x1");
        assert!(x_end > c_end);
    }

    #[test]
    fn bus_group_contention_serializes_cards() {
        // Build a K80-like card explicitly: two K40s on one bus group.
        let m = Machine::new(
            "k80-shared",
            vec![
                crate::device::nvidia_k40(0, 0),
                crate::device::nvidia_k40(1, 0),
                crate::device::nvidia_k40(2, 1),
            ],
        );
        let mut e = Engine::noiseless(m);
        let a = e.transfer(0, 12_000_000, Dir::H2D, SimTime::ZERO, "a");
        let b = e.transfer(1, 12_000_000, Dir::H2D, SimTime::ZERO, "b");
        let c = e.transfer(2, 12_000_000, Dir::H2D, SimTime::ZERO, "c");
        assert!(b > a, "same-card transfer must wait");
        assert!((c.as_secs() - a.as_secs()).abs() < 1e-12, "other card is independent");
    }

    #[test]
    fn compute_respects_device_speed() {
        let e = Engine::noiseless(Machine::two_cpus_two_mics());
        let k = KernelIntensity {
            flops_per_iter: 1000.0,
            mem_elems_per_iter: 1.0,
            data_elems_per_iter: 1.0,
            elem_bytes: 8.0,
        };
        let w = ChunkWork::new(1_000_000, &k);
        let cpu = e.pure_compute_span(0, &w);
        let mic = e.pure_compute_span(2, &w);
        // MIC sustains similar flops to one CPU socket at 0.45 eff of
        // 1.21 TF ≈ 545 GF vs CPU 530 GF — close; just check positive.
        assert!(cpu.as_secs() > 0.0 && mic.as_secs() > 0.0);
    }

    #[test]
    fn determinism_across_resets() {
        let mut e = Engine::new(Machine::four_k40(), NoiseModel::new(7, 0.03));
        let k = axpy_intensity();
        let run = |e: &mut Engine| {
            e.reset();
            let mut last = SimTime::ZERO;
            for i in 0..10 {
                let t = e.transfer(0, 1 << 20, Dir::H2D, last, "x");
                last = e.compute(0, &ChunkWork::new(10_000, &k), t, &format!("c{i}"));
            }
            last
        };
        let a = run(&mut e);
        let b = run(&mut e);
        assert_eq!(a, b);
    }

    #[test]
    fn barrier_records_sync_and_aligns() {
        let mut e = Engine::noiseless(Machine::four_k40());
        let k = axpy_intensity();
        let c0 = e.compute(0, &ChunkWork::new(1_000_000, &k), SimTime::ZERO, "k");
        let c1 = e.compute(1, &ChunkWork::new(2_000_000, &k), SimTime::ZERO, "k");
        let rel = e.barrier(&[0, 1], &[c0, c1]);
        assert_eq!(rel, c1);
        assert_eq!(e.compute_free_at(0), rel);
        let b = e.trace().breakdown(4);
        assert!(b.busy(0, OpKind::Sync).as_secs() > 0.0);
        assert_eq!(b.busy(1, OpKind::Sync), SimSpan::ZERO);
    }

    #[test]
    fn zero_iterations_cost_nothing() {
        let mut e = Engine::noiseless(Machine::four_k40());
        let k = axpy_intensity();
        let t = e.compute(0, &ChunkWork::new(0, &k), SimTime::ZERO, "k");
        assert_eq!(t, SimTime::ZERO);
        assert!(e.trace().is_empty());
    }

    #[test]
    fn launch_overhead_is_paid_once_per_call() {
        let mut e = Engine::noiseless(Machine::four_k40());
        let t1 = e.launch(0, SimTime::ZERO, "offload");
        assert!((t1.as_secs() - 10e-6).abs() < 1e-12);
        let t2 = e.launch(0, SimTime::ZERO, "offload");
        assert!((t2.as_secs() - 20e-6).abs() < 1e-12, "serialized on compute engine");
    }

    #[test]
    fn try_ops_without_plan_match_infallible_ops() {
        let k = axpy_intensity();
        let run = |fallible: bool| {
            let mut e = Engine::new(Machine::four_k40(), NoiseModel::new(3, 0.05));
            let mut last = SimTime::ZERO;
            for _ in 0..6 {
                if fallible {
                    last = e.try_launch(0, last, "l").unwrap();
                    last = e.try_transfer(0, 1 << 20, Dir::H2D, last, "x").unwrap();
                    last = e.try_compute(0, &ChunkWork::new(10_000, &k), last, "c").unwrap();
                } else {
                    last = e.launch(0, last, "l");
                    last = e.transfer(0, 1 << 20, Dir::H2D, last, "x");
                    last = e.compute(0, &ChunkWork::new(10_000, &k), last, "c");
                }
            }
            (last, e.take_trace().to_csv())
        };
        assert_eq!(run(false), run(true), "no plan: try_* must be byte-identical");
    }

    #[test]
    fn infallible_ops_ignore_installed_plan() {
        let k = axpy_intensity();
        let run = |with_plan: bool| {
            let mut e = Engine::new(Machine::four_k40(), NoiseModel::new(3, 0.05));
            if with_plan {
                e.set_fault_plan(
                    crate::fault::FaultPlan::new(1)
                        .with_dropout_at(0, 0.0)
                        .with_transient_dma(0, 1.0),
                );
            }
            let t = e.transfer(0, 1 << 20, Dir::H2D, SimTime::ZERO, "x");
            let c = e.compute(0, &ChunkWork::new(10_000, &k), t, "c");
            (c, e.take_trace().to_csv())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn dropout_truncates_inflight_op_and_fails_later_ones() {
        let k = axpy_intensity();
        let mut e = Engine::noiseless(Machine::four_k40());
        // Find when an unfaulted compute would end, then drop the device
        // mid-kernel.
        let probe = e.pure_compute_span(0, &ChunkWork::new(10_000_000, &k)).as_secs();
        let tf = probe / 2.0;
        e.set_fault_plan(crate::fault::FaultPlan::new(0).with_dropout_at(0, tf));
        let err = e
            .try_compute(0, &ChunkWork::new(10_000_000, &k), SimTime::ZERO, "c")
            .unwrap_err();
        assert_eq!(err.kind, crate::fault::FaultKind::Dropout);
        assert!((err.at.as_secs() - tf).abs() < 1e-12, "fails at the dropout instant");
        // Any later submission fails immediately at its start.
        let err2 = e.try_launch(0, err.at, "l").unwrap_err();
        assert_eq!(err2.kind, crate::fault::FaultKind::Dropout);
        assert!(err2.at >= err.at);
        // Other devices are unaffected.
        assert!(e.try_compute(1, &ChunkWork::new(1_000, &k), SimTime::ZERO, "c").is_ok());
        // The fault shows up in the trace.
        let b = e.trace().breakdown(4);
        assert!(b.busy(0, OpKind::Fault).as_secs() > 0.0);
    }

    #[test]
    fn transient_dma_burns_latency_and_is_retriable() {
        let mut e = Engine::noiseless(Machine::four_k40());
        let mut plan =
            crate::fault::DeviceFaultPlan { transient_dma_rate: 1.0, ..Default::default() };
        plan.dma_error_latency = 123e-6;
        e.set_fault_plan(crate::fault::FaultPlan::new(0).with_device(0, plan));
        let err = e.try_transfer(0, 1 << 20, Dir::H2D, SimTime::ZERO, "x").unwrap_err();
        assert_eq!(err.kind, crate::fault::FaultKind::TransientDma);
        assert!((err.at.as_secs() - 123e-6).abs() < 1e-12);
        // The failed attempt held the upload engine until the error.
        let b = e.trace().breakdown(4);
        assert!((b.busy(0, OpKind::Fault).as_secs() - 123e-6).abs() < 1e-12);
    }

    #[test]
    fn backoff_and_failover_are_traced() {
        let mut e = Engine::noiseless(Machine::four_k40());
        let t1 = e.record_backoff(0, SimTime::from_secs(1.0), SimSpan::from_micros(100.0), "b");
        assert!((t1.as_secs() - 1.0001).abs() < 1e-12);
        // Backoff holds nothing: the compute engine is still free at 0.
        assert_eq!(e.compute_free_at(0), SimTime::ZERO);
        let t2 = e.record_failover(0, SimTime::ZERO, SimSpan::from_micros(20.0), "f");
        assert_eq!(e.compute_free_at(0), t2);
        let b = e.trace().breakdown(4);
        assert!(b.busy(0, OpKind::Backoff).as_secs() > 0.0);
        assert!(b.busy(0, OpKind::Failover).as_secs() > 0.0);
    }

    #[test]
    fn slowdown_window_stretches_ops_and_marks_the_trace() {
        let k = axpy_intensity();
        let mut e = Engine::noiseless(Machine::four_k40());
        let base = e.pure_compute_span(0, &ChunkWork::new(1_000_000, &k)).as_secs();
        // Window covers the whole run with factor 2.5.
        e.set_fault_plan(crate::fault::FaultPlan::new(0).with_slowdown(0, 2.5, 0.0, 1e9));
        let end = e.try_compute(0, &ChunkWork::new(1_000_000, &k), SimTime::ZERO, "c").unwrap();
        assert!((end.as_secs() - base * 2.5).abs() < 1e-12, "compute stretched by factor");
        let slow_marks = e
            .trace()
            .events()
            .iter()
            .filter(|ev| ev.kind == OpKind::Fault)
            .count();
        assert_eq!(slow_marks, 1, "one zero-length slowdown marker");

        // A transfer inside the window stretches too.
        let mut e2 = Engine::noiseless(Machine::four_k40());
        let plain = e2.try_transfer(0, 1 << 20, Dir::H2D, SimTime::ZERO, "x").unwrap();
        let mut e3 = Engine::noiseless(Machine::four_k40());
        e3.set_fault_plan(crate::fault::FaultPlan::new(0).with_slowdown(0, 2.0, 0.0, 1e9));
        let slow = e3.try_transfer(0, 1 << 20, Dir::H2D, SimTime::ZERO, "x").unwrap();
        assert!((slow.as_secs() - plain.as_secs() * 2.0).abs() < 1e-12);
    }

    #[test]
    fn ops_outside_the_slowdown_window_are_untouched() {
        let k = axpy_intensity();
        let run = |with_plan: bool| {
            let mut e = Engine::new(Machine::four_k40(), NoiseModel::new(3, 0.05));
            if with_plan {
                // Window far in the future: nothing here reaches it.
                e.set_fault_plan(
                    crate::fault::FaultPlan::new(1).with_slowdown(0, 4.0, 1e6, 2e6),
                );
            }
            let t = e.try_transfer(0, 1 << 20, Dir::H2D, SimTime::ZERO, "x").unwrap();
            let c = e.try_compute(0, &ChunkWork::new(10_000, &k), t, "c").unwrap();
            (c, e.take_trace().to_csv())
        };
        assert_eq!(run(false), run(true), "outside the window runs are byte-identical");
    }

    #[test]
    fn peek_matches_commit_under_a_slowdown_plan() {
        let k = axpy_intensity();
        let mut e = Engine::new(Machine::four_k40(), NoiseModel::new(7, 0.05));
        e.set_fault_plan(crate::fault::FaultPlan::new(0).with_slowdown(0, 3.0, 0.0, 1e9));
        let warm = e.try_compute(0, &ChunkWork::new(10_000, &k), SimTime::ZERO, "w").unwrap();
        let work = ChunkWork::new(123_456, &k);
        let peeked = e.peek_compute_end(0, &work, warm, TeamSched::Aggregate);
        let committed = e.try_compute(0, &work, warm, "real").unwrap();
        assert_eq!(peeked, committed, "peek must price the stretch identically");
    }

    #[test]
    fn recovery_lets_submissions_succeed_after_the_outage() {
        let k = axpy_intensity();
        let mut e = Engine::noiseless(Machine::four_k40());
        e.set_fault_plan(
            crate::fault::FaultPlan::new(0).with_dropout_at(0, 1e-3).with_recovery_at(0, 2e-3),
        );
        // Mid-outage submission fails at its start.
        let err = e.try_launch(0, SimTime::from_secs(1.5e-3), "l").unwrap_err();
        assert_eq!(err.kind, crate::fault::FaultKind::Dropout);
        // Post-recovery submission succeeds.
        let ok = e.try_compute(0, &ChunkWork::new(10_000, &k), SimTime::from_secs(2e-3), "c");
        assert!(ok.is_ok(), "device answers again after recover_at");
    }

    #[test]
    fn flaky_window_faults_inside_and_stays_clean_outside() {
        let mut e = Engine::noiseless(Machine::four_k40());
        e.set_fault_plan(
            crate::fault::FaultPlan::new(0).with_flaky_window(0, 0.0, 1e9, 1.0, 0.0),
        );
        let err = e.try_transfer(0, 1 << 20, Dir::H2D, SimTime::ZERO, "x").unwrap_err();
        assert_eq!(err.kind, crate::fault::FaultKind::TransientDma);
        // A window that never covers the run injects nothing.
        let mut e2 = Engine::noiseless(Machine::four_k40());
        e2.set_fault_plan(
            crate::fault::FaultPlan::new(0).with_flaky_window(0, 1e6, 2e6, 1.0, 1.0),
        );
        assert!(e2.try_transfer(0, 1 << 20, Dir::H2D, SimTime::ZERO, "x").is_ok());
        assert!(e2.try_launch(0, SimTime::ZERO, "l").is_ok());
    }

    #[test]
    fn trace_level_never_perturbs_the_clock() {
        let k = axpy_intensity();
        let run = |level: TraceLevel| {
            let mut e = Engine::new(Machine::four_k40(), NoiseModel::new(3, 0.05));
            e.set_trace_level(level);
            let mut last = SimTime::ZERO;
            for _ in 0..10 {
                let t = e.transfer(0, 1 << 20, Dir::H2D, last, "x");
                last = e.compute(0, &ChunkWork::new(10_000, &k), t, "c");
            }
            (last, e.ops_submitted(), e.trace().len())
        };
        let (t_full, ops_full, ev_full) = run(TraceLevel::Full);
        let (t_spans, ops_spans, ev_spans) = run(TraceLevel::Spans);
        let (t_off, ops_off, ev_off) = run(TraceLevel::Off);
        assert_eq!(t_full, t_spans, "Spans must not shift the clock");
        assert_eq!(t_full, t_off, "Off must not shift the clock");
        assert_eq!(ops_full, ops_spans);
        assert_eq!(ops_full, ops_off, "ops counter is level-independent");
        assert_eq!(ev_full, 20);
        assert_eq!(ev_spans, 20, "Spans keeps every event");
        assert_eq!(ev_off, 0, "Off records nothing");
        assert_eq!(ops_full, ev_full as u64, "at Full, ops == trace length");
    }

    #[test]
    fn ops_counter_is_cumulative_and_take_trace_keeps_level() {
        let k = axpy_intensity();
        let mut e = Engine::noiseless(Machine::four_k40());
        e.set_trace_level(TraceLevel::Off);
        let t = e.transfer(0, 1 << 20, Dir::H2D, SimTime::ZERO, "x");
        e.compute(0, &ChunkWork::new(10, &k), t, "c");
        assert_eq!(e.ops_submitted(), 2);
        assert!(e.trace().is_empty(), "Off: nothing recorded");
        e.reset();
        assert_eq!(e.ops_submitted(), 2, "reset keeps the telemetry counter");
        let taken = e.take_trace();
        assert_eq!(taken.level(), TraceLevel::Off);
        assert_eq!(e.trace_level(), TraceLevel::Off, "take_trace preserves the level");
        assert_eq!(e.ops_submitted(), 2, "take_trace keeps the telemetry counter");
    }

    #[test]
    fn unified_memory_pays_penalty() {
        let mut m = Machine::four_k40();
        m.devices[0].memory = MemoryKind::Unified;
        let e = Engine::noiseless(m);
        let plain = e.pure_transfer_span(1, 1 << 20);
        let unified = e.pure_transfer_span(0, 1 << 20);
        assert!(unified.as_secs() > plain.as_secs() * 10.0);
    }
}

#[cfg(test)]
mod team_tests {
    use super::*;
    use crate::machine::Machine;
    use crate::noise::NoiseModel;

    fn work_intensity() -> KernelIntensity {
        KernelIntensity {
            flops_per_iter: 100.0,
            mem_elems_per_iter: 1.0,
            data_elems_per_iter: 0.0,
            elem_bytes: 8.0,
        }
    }

    #[test]
    fn noiseless_team_scheds_agree_with_aggregate() {
        // Without noise and with iters divisible by teams, all three
        // team policies produce identical spans.
        let k = work_intensity();
        let teams = Machine::four_k40().devices[0].teams as u64;
        let iters = teams * 8 * 1000;
        let mut spans = Vec::new();
        for sched in [TeamSched::Aggregate, TeamSched::Block, TeamSched::Dynamic] {
            let mut e = Engine::noiseless(Machine::four_k40());
            let end = e.compute_teams(
                0,
                &ChunkWork::new(iters, &k),
                SimTime::ZERO,
                "t",
                sched,
            );
            spans.push(end.as_secs());
        }
        assert!((spans[0] - spans[1]).abs() < 1e-15, "block {spans:?}");
        assert!((spans[0] - spans[2]).abs() < 1e-12, "dynamic {spans:?}");
    }

    #[test]
    fn noisy_team_block_is_slowest_and_dynamic_recovers() {
        // With per-team noise, static team distribution waits for the
        // slowest team (max of many draws), aggregate draws once, and
        // dynamic smooths toward the mean.
        let k = work_intensity();
        let iters = 1_000_000u64;
        let run = |sched: TeamSched, seed: u64| {
            let mut e = Engine::new(Machine::four_k40(), NoiseModel::new(seed, 0.06));
            e.compute_teams(0, &ChunkWork::new(iters, &k), SimTime::ZERO, "t", sched)
                .as_secs()
        };
        let mean = |sched: TeamSched| {
            (0..20).map(|s| run(sched, s)).sum::<f64>() / 20.0
        };
        let agg = mean(TeamSched::Aggregate);
        let block = mean(TeamSched::Block);
        let dynamic = mean(TeamSched::Dynamic);
        assert!(block > agg, "block {block} should exceed aggregate {agg} on average");
        assert!(dynamic < block, "dynamic {dynamic} should beat block {block}");
    }

    #[test]
    fn peek_compute_end_matches_the_subsequent_commit() {
        // The peek is the committing path minus the commit: after some
        // history on the device (so op_seq is non-trivial), peeking and
        // then committing the same op must agree to the bit, for every
        // team schedule and a noisy model.
        let k = work_intensity();
        for sched in [TeamSched::Aggregate, TeamSched::Block, TeamSched::Dynamic] {
            let mut e = Engine::new(Machine::four_k40(), NoiseModel::new(7, 0.05));
            // History: a launch, a transfer and a compute shift the
            // sequence counters and the calendar.
            let t0 = e.launch(0, SimTime::ZERO, "warm");
            let t1 = e.transfer(0, 1 << 20, Dir::H2D, t0, "warm-in");
            let t2 = e.compute(0, &ChunkWork::new(10_000, &k), t1, "warm");
            let work = ChunkWork::new(123_456, &k);
            let peeked = e.peek_compute_end(0, &work, t2, sched);
            let committed = e.compute_teams(0, &work, t2, "real", sched);
            assert_eq!(peeked, committed, "{sched:?}");
        }
    }

    #[test]
    fn peek_compute_end_does_not_perturb_the_engine() {
        let k = work_intensity();
        let mut a = Engine::new(Machine::four_k40(), NoiseModel::new(3, 0.05));
        let mut b = a.clone();
        // Peek many times on one engine, never on the other.
        for i in 0..5 {
            let _ = a.peek_compute_end(0, &ChunkWork::new(1000 + i, &k), SimTime::ZERO, TeamSched::Aggregate);
        }
        let ea = a.compute(0, &ChunkWork::new(5_000, &k), SimTime::ZERO, "x");
        let eb = b.compute(0, &ChunkWork::new(5_000, &k), SimTime::ZERO, "x");
        assert_eq!(ea, eb, "peeking must be free of side effects");
    }

    #[test]
    fn team_remainder_handled() {
        // iters not divisible by teams: the extra-iteration teams bound
        // the span, but everything still completes.
        let k = work_intensity();
        let mut e = Engine::noiseless(Machine::four_k40());
        let end = e.compute_teams(
            0,
            &ChunkWork::new(7, &k),
            SimTime::ZERO,
            "t",
            TeamSched::Block,
        );
        assert!(end.as_secs() > 0.0);
        // 7 iterations over 15 teams: worst team has 1 iteration at
        // per-team rate = aggregate/15.
        let pure = e.pure_compute_span(0, &ChunkWork::new(7, &k)).as_secs();
        let expect = pure / 7.0 * 15.0;
        assert!((end.as_secs() - expect).abs() < 1e-15);
    }
}
