//! Execution tracing and offload-time breakdown.
//!
//! Figure 6 of the paper reports the accumulated breakdown of offloading
//! time per device — runtime init, host-to-device copies, kernel
//! execution, device-to-host copies, and barrier synchronization — with
//! a curve of incurred load imbalance (below 5% on average). The
//! [`Trace`] records every simulated operation with start/end times so
//! the harness can regenerate that figure, render ASCII Gantt charts for
//! the examples, and export CSV.

use crate::device::DeviceId;
use crate::time::{SimSpan, SimTime};
use std::fmt::Write as _;

/// Category of a traced operation, the x-axis groups of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Runtime initialization / scheduling bookkeeping.
    Init,
    /// Host-to-device data movement.
    H2D,
    /// Kernel execution.
    Kernel,
    /// Device-to-host data movement.
    D2H,
    /// Idle time waiting on the end-of-region barrier (load imbalance).
    Sync,
    /// Time lost to an injected fault (failed DMA, hung launch, or the
    /// truncated tail of an operation cut short by a device dropout).
    Fault,
    /// A proxy backing off before retrying a transiently failed
    /// operation (no device resource is held).
    Backoff,
    /// Recovery bookkeeping on a surviving device picking up work
    /// re-queued from a failed one.
    Failover,
}

impl OpKind {
    /// Number of categories.
    pub const N: usize = 8;

    /// All categories in display order.
    pub const ALL: [OpKind; OpKind::N] = [
        OpKind::Init,
        OpKind::H2D,
        OpKind::Kernel,
        OpKind::D2H,
        OpKind::Sync,
        OpKind::Fault,
        OpKind::Backoff,
        OpKind::Failover,
    ];

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::Init => "INIT",
            OpKind::H2D => "H2D",
            OpKind::Kernel => "KERNEL",
            OpKind::D2H => "D2H",
            OpKind::Sync => "SYNC",
            OpKind::Fault => "FAULT",
            OpKind::Backoff => "BACKOFF",
            OpKind::Failover => "FAILOVER",
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Handle to an interned event label (see [`Trace::label`]).
///
/// Labels repeat heavily — every chunk of a dynamic schedule records
/// `"chunk-in"`, `"chunk-launch"`, `"chunk-out"` and the kernel name —
/// so events store a small id into the trace's label table instead of
/// an owned `String` per event. This removes a heap allocation from
/// every simulated operation, the hottest path of the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LabelId(u32);

impl LabelId {
    /// Sentinel id used at [`TraceLevel::Spans`], where events skip the
    /// label table entirely. Resolves to the empty string.
    pub const UNLABELED: LabelId = LabelId(u32::MAX);
}

/// How much the trace records per simulated operation.
///
/// The recorder sits on the hottest path of the simulator — every
/// transfer, kernel, and barrier appends one event — so scheduling-only
/// workloads (parameter sweeps, torture benches) can dial recording
/// down without touching the calendar math: the virtual clock, noise
/// draw order, and scheduling decisions are bit-identical at every
/// level.
///
/// What the lower levels give up is trace-*derived* observability:
/// at [`TraceLevel::Off`] a [`Breakdown`] folds an empty event list,
/// so utilization, per-kind busy times, and the imbalance metric all
/// read zero even though the schedule they would have described is
/// unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TraceLevel {
    /// Record nothing. `events()` stays empty; breakdowns and renders
    /// are vacuous. Cheapest: the append is skipped entirely.
    Off,
    /// Record every event's device/kind/times/amount but skip label
    /// interning; events carry [`LabelId::UNLABELED`]. Breakdowns,
    /// makespan, and imbalance stay exact; only label text is lost.
    Spans,
    /// Record everything, labels included. The default — existing
    /// goldens (CSV, Chrome JSON, reports) are byte-identical.
    #[default]
    Full,
}

/// One recorded operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Device the operation ran on.
    pub device: DeviceId,
    /// Category.
    pub kind: OpKind,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
    /// Bytes moved (transfers) or iterations executed (kernels).
    pub amount: u64,
    /// Interned label id; resolve with [`Trace::label`].
    pub label: LabelId,
}

impl TraceEvent {
    /// Duration of the operation.
    pub fn span(&self) -> SimSpan {
        self.end - self.start
    }
}

/// Recorder for one offload region (or a whole run).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    /// Interned label table, indexed by [`LabelId`]. The cardinality is
    /// tiny (a handful of fixed stage names plus the kernel names), so
    /// a linear probe beats a hash map here.
    labels: Vec<Box<str>>,
    /// Recording level; see [`TraceLevel`].
    level: TraceLevel,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty trace recording at `level`.
    pub fn with_level(level: TraceLevel) -> Self {
        Self { level, ..Self::default() }
    }

    /// Current recording level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Change the recording level. Takes effect for subsequent
    /// [`Trace::record`] calls; already-recorded events are kept.
    pub fn set_level(&mut self, level: TraceLevel) {
        self.level = level;
    }

    /// Intern `label`, returning its id (existing id if already seen).
    pub fn intern(&mut self, label: &str) -> LabelId {
        match self.labels.iter().position(|l| &**l == label) {
            Some(i) => LabelId(i as u32),
            None => {
                self.labels.push(label.into());
                LabelId((self.labels.len() - 1) as u32)
            }
        }
    }

    /// Resolve an interned label id back to its text.
    /// [`LabelId::UNLABELED`] resolves to the empty string.
    pub fn label(&self, id: LabelId) -> &str {
        if id == LabelId::UNLABELED {
            return "";
        }
        &self.labels[id.0 as usize]
    }

    /// Record an operation, subject to the recording [`TraceLevel`].
    pub fn record(
        &mut self,
        device: DeviceId,
        kind: OpKind,
        start: SimTime,
        end: SimTime,
        amount: u64,
        label: &str,
    ) {
        debug_assert!(end >= start, "event ends before it starts");
        let label = match self.level {
            TraceLevel::Off => return,
            TraceLevel::Spans => LabelId::UNLABELED,
            TraceLevel::Full => self.intern(label),
        };
        self.events.push(TraceEvent { device, kind, start, end, amount, label });
    }

    /// All events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drop all events (reuse between regions).
    ///
    /// Steady-state reuse is allocation-free: the event buffer's
    /// capacity is retained (`Vec::clear` never shrinks), and the
    /// interned label table is kept in full — ids from earlier regions
    /// stay valid, and a rewound engine re-records the same labels, so
    /// the second run of a reseeded runtime interns nothing new (see
    /// [`Trace::label_count`]). The recording level is also unchanged.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Number of distinct labels interned so far. Stable across
    /// [`Trace::clear`]; useful for asserting steady-state reuse.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Append every event of `other`, re-interning its labels into this
    /// trace's table.
    ///
    /// This is how a long-running service keeps one machine-wide trace
    /// across many per-request traces: each request's trace is taken
    /// out of the engine with its own small label table, and absorbing
    /// re-maps those ids onto the master table. Because requests reuse
    /// the same stage and kernel labels, the master table stays bounded
    /// by the label *vocabulary*, not by the request count — see the
    /// `absorb_label_table_is_bounded_by_vocabulary` test.
    ///
    /// Events are appended as-is (absolute times, recording order), so
    /// absorbing traces produced on a shared calendar yields a merged
    /// trace whose [`Trace::breakdown`] and utilization math see the
    /// true machine timeline. Respects this trace's [`TraceLevel`]:
    /// `Off` absorbs nothing, `Spans` drops the labels.
    pub fn absorb(&mut self, other: &Trace) {
        match self.level {
            TraceLevel::Off => {}
            TraceLevel::Spans => {
                self.events.extend(
                    other.events.iter().map(|e| TraceEvent { label: LabelId::UNLABELED, ..*e }),
                );
            }
            TraceLevel::Full => {
                let map: Vec<LabelId> =
                    other.labels.iter().map(|l| self.intern(l)).collect();
                self.events.extend(other.events.iter().map(|e| TraceEvent {
                    label: if e.label == LabelId::UNLABELED {
                        LabelId::UNLABELED
                    } else {
                        map[e.label.0 as usize]
                    },
                    ..*e
                }));
            }
        }
    }

    /// Capacity of the event buffer — retained across [`Trace::clear`]
    /// so steady-state reuse does not reallocate.
    pub fn events_capacity(&self) -> usize {
        self.events.capacity()
    }

    /// The latest end time across all events (the region makespan).
    pub fn makespan(&self) -> SimTime {
        self.events.iter().map(|e| e.end).max().unwrap_or(SimTime::ZERO)
    }

    /// Per-device, per-category busy time.
    pub fn breakdown(&self, n_devices: usize) -> Breakdown {
        let mut busy = vec![[SimSpan::ZERO; OpKind::N]; n_devices];
        let mut completion = vec![SimTime::ZERO; n_devices];
        for e in &self.events {
            let d = e.device as usize;
            assert!(d < n_devices, "event device {} out of range {}", e.device, n_devices);
            let slot = OpKind::ALL.iter().position(|k| *k == e.kind).expect("known kind");
            busy[d][slot] += e.span();
            if e.kind != OpKind::Sync {
                completion[d] = completion[d].max(e.end);
            }
        }
        Breakdown { busy, completion, makespan: self.makespan() }
    }

    /// CSV export: `device,kind,start_s,end_s,amount,label`.
    ///
    /// The buffer is preallocated from the event count and rows are
    /// written with `fmt::Write` — no per-row `String` churn.
    pub fn to_csv(&self) -> String {
        // ~56 bytes of fixed-width fields per row plus the label.
        let mut out = String::with_capacity(40 + self.events.len() * 72);
        out.push_str("device,kind,start_s,end_s,amount,label\n");
        for e in &self.events {
            let _ = writeln!(
                out,
                "{},{},{:.9},{:.9},{},{}",
                e.device,
                e.kind,
                e.start.as_secs(),
                e.end.as_secs(),
                e.amount,
                self.label(e.label)
            );
        }
        out
    }

    /// Export as Chrome trace-event JSON (load in `chrome://tracing` or
    /// [Perfetto](https://ui.perfetto.dev)): one complete event (`"X"`)
    /// per operation, devices as process IDs, operation kinds as
    /// threads. Hand-serialized — labels are escaped, no serde needed.
    pub fn to_chrome_json(&self) -> String {
        fn escape_into(out: &mut String, s: &str) {
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if c.is_control() => out.push(' '),
                    c => out.push(c),
                }
            }
        }
        let mut out = String::with_capacity(16 + self.events.len() * 140);
        out.push_str("[\n");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("  {\"name\":\"");
            escape_into(&mut out, self.label(e.label));
            let _ = write!(
                out,
                r#"","cat":"{}","ph":"X","ts":{:.3},"dur":{:.3},"pid":{},"tid":"{}","args":{{"amount":{}}}}}"#,
                e.kind,
                e.start.as_micros(),
                e.span().as_secs() * 1e6,
                e.device,
                e.kind,
                e.amount
            );
        }
        out.push_str("\n]\n");
        out
    }

    /// Render an ASCII Gantt chart, one row per device, `width` columns
    /// spanning the makespan. Kernel time renders as `#`, H2D as `<`,
    /// D2H as `>`, init as `i`, sync as `.`, faults as `X`, retry
    /// backoff as `~`, failover bookkeeping as `+`.
    pub fn gantt(&self, n_devices: usize, width: usize) -> String {
        let total = self.makespan().as_secs();
        if total <= 0.0 || width == 0 {
            return String::new();
        }
        // Grow past `n_devices` if the trace mentions higher device ids
        // (e.g. a merged trace or a machine-file mismatch) — a chart
        // with extra rows beats a panic.
        let rows_n = self
            .events
            .iter()
            .map(|e| e.device as usize + 1)
            .max()
            .unwrap_or(0)
            .max(n_devices);
        let mut rows = vec![vec![' '; width]; rows_n];
        for e in &self.events {
            let glyph = match e.kind {
                OpKind::Init => 'i',
                OpKind::H2D => '<',
                OpKind::Kernel => '#',
                OpKind::D2H => '>',
                OpKind::Sync => '.',
                OpKind::Fault => 'X',
                OpKind::Backoff => '~',
                OpKind::Failover => '+',
            };
            let s = ((e.start.as_secs() / total) * width as f64) as usize;
            let mut t = ((e.end.as_secs() / total) * width as f64).ceil() as usize;
            t = t.min(width);
            for c in &mut rows[e.device as usize][s..t] {
                // Kernel wins over transfer glyphs when ranges overlap on
                // a cell boundary; sync never overwrites work.
                if glyph == '.' && *c != ' ' {
                    continue;
                }
                *c = glyph;
            }
        }
        // One buffer, written with `fmt::Write` like `to_csv` — no
        // per-row `format!` temporaries.
        let mut out = String::with_capacity((rows_n + 1) * (width + 9));
        for (d, row) in rows.iter().enumerate() {
            let head = out.len();
            let _ = write!(out, "dev{d}");
            while out.len() - head < 5 {
                out.push(' ');
            }
            out.push('|');
            out.extend(row.iter());
            out.push_str("|\n");
        }
        // The axis label right-aligns a composite ("X.XXX ms"), which
        // needs one small staging string; rows above stay churn-free.
        let mut ms = String::with_capacity(16);
        let _ = write!(ms, "{:.3} ms", total * 1e3);
        let _ = writeln!(out, "       0 {ms:>width$}", width = width.saturating_sub(2));
        out
    }
}

/// Per-device busy time by category, plus completion times — the data
/// behind Figure 6.
#[derive(Debug, Clone)]
pub struct Breakdown {
    busy: Vec<[SimSpan; OpKind::N]>,
    completion: Vec<SimTime>,
    makespan: SimTime,
}

impl Breakdown {
    /// Busy span for one device/category.
    pub fn busy(&self, device: DeviceId, kind: OpKind) -> SimSpan {
        let slot = OpKind::ALL.iter().position(|k| *k == kind).expect("known kind");
        self.busy[device as usize][slot]
    }

    /// Device's barrier wait: makespan minus its last non-sync completion.
    pub fn barrier_wait(&self, device: DeviceId) -> SimSpan {
        self.makespan - self.completion[device as usize]
    }

    /// Percentage breakdown for one device over the makespan, in
    /// `OpKind::ALL` order, where SYNC is the barrier wait. Sums to ≤100
    /// (gaps between operations are unattributed).
    pub fn percentages(&self, device: DeviceId) -> [f64; OpKind::N] {
        let total = self.makespan.as_secs();
        if total <= 0.0 {
            return [0.0; OpKind::N];
        }
        let mut out = [0.0; OpKind::N];
        for (i, k) in OpKind::ALL.iter().enumerate() {
            let span = if *k == OpKind::Sync {
                self.barrier_wait(device)
            } else {
                self.busy(device, *k)
            };
            out[i] = span.as_secs() / total * 100.0;
        }
        out
    }

    /// The paper's load-imbalance metric: mean over devices of
    /// `(makespan − completion_d) / makespan`, as a percentage. Devices
    /// that did no work at all are excluded (CUTOFF removed them).
    pub fn imbalance_pct(&self) -> f64 {
        let total = self.makespan.as_secs();
        if total <= 0.0 {
            return 0.0;
        }
        let participants: Vec<&SimTime> =
            self.completion.iter().filter(|c| c.as_secs() > 0.0).collect();
        if participants.is_empty() {
            return 0.0;
        }
        let sum: f64 =
            participants.iter().map(|c| (total - c.as_secs()) / total * 100.0).sum();
        sum / participants.len() as f64
    }

    /// The paper's Table IV/V load-balance metric: the ratio of the
    /// maximum to the minimum completion time over devices that did any
    /// work. `1.0` when fewer than two devices participated.
    pub fn load_balance_ratio(&self) -> f64 {
        crate::metrics::load_balance_ratio(self.completion.iter().map(|c| c.as_secs()))
    }

    /// Makespan of the region.
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }

    /// Completion time (last non-sync op) per device.
    pub fn completion(&self, device: DeviceId) -> SimTime {
        self.completion[device as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn breakdown_accumulates_by_kind() {
        let mut tr = Trace::new();
        tr.record(0, OpKind::H2D, t(0.0), t(1.0), 100, "x");
        tr.record(0, OpKind::Kernel, t(1.0), t(3.0), 10, "k");
        tr.record(0, OpKind::D2H, t(3.0), t(3.5), 50, "y");
        tr.record(1, OpKind::Kernel, t(0.0), t(4.0), 10, "k");
        let b = tr.breakdown(2);
        assert_eq!(b.busy(0, OpKind::H2D).as_secs(), 1.0);
        assert_eq!(b.busy(0, OpKind::Kernel).as_secs(), 2.0);
        assert_eq!(b.busy(1, OpKind::Kernel).as_secs(), 4.0);
        assert_eq!(b.makespan().as_secs(), 4.0);
    }

    #[test]
    fn barrier_wait_is_makespan_minus_completion() {
        let mut tr = Trace::new();
        tr.record(0, OpKind::Kernel, t(0.0), t(3.0), 1, "k");
        tr.record(1, OpKind::Kernel, t(0.0), t(4.0), 1, "k");
        let b = tr.breakdown(2);
        assert_eq!(b.barrier_wait(0).as_secs(), 1.0);
        assert_eq!(b.barrier_wait(1).as_secs(), 0.0);
    }

    #[test]
    fn imbalance_of_perfect_balance_is_zero() {
        let mut tr = Trace::new();
        tr.record(0, OpKind::Kernel, t(0.0), t(2.0), 1, "k");
        tr.record(1, OpKind::Kernel, t(0.0), t(2.0), 1, "k");
        assert_eq!(tr.breakdown(2).imbalance_pct(), 0.0);
    }

    #[test]
    fn imbalance_averages_over_participants() {
        let mut tr = Trace::new();
        tr.record(0, OpKind::Kernel, t(0.0), t(4.0), 1, "k");
        tr.record(1, OpKind::Kernel, t(0.0), t(2.0), 1, "k");
        // device 2 never works — excluded.
        let b = tr.breakdown(3);
        // waits: 0% and 50% → mean 25%.
        assert!((b.imbalance_pct() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn percentages_sum_to_at_most_100() {
        let mut tr = Trace::new();
        tr.record(0, OpKind::Init, t(0.0), t(0.1), 0, "i");
        tr.record(0, OpKind::H2D, t(0.1), t(0.5), 10, "x");
        tr.record(0, OpKind::Kernel, t(0.5), t(0.9), 5, "k");
        tr.record(1, OpKind::Kernel, t(0.0), t(1.0), 5, "k");
        let b = tr.breakdown(2);
        let p: f64 = b.percentages(0).iter().sum();
        assert!(p <= 100.0 + 1e-9, "sum {p}");
        assert!(p > 99.0, "device 0 busy+wait should cover the span, got {p}");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut tr = Trace::new();
        tr.record(0, OpKind::Kernel, t(0.0), t(1.0), 42, "axpy");
        let csv = tr.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "device,kind,start_s,end_s,amount,label");
        assert!(lines.next().unwrap().contains("KERNEL"));
    }

    #[test]
    fn gantt_renders_rows() {
        let mut tr = Trace::new();
        tr.record(0, OpKind::H2D, t(0.0), t(0.5), 1, "x");
        tr.record(0, OpKind::Kernel, t(0.5), t(1.0), 1, "k");
        tr.record(1, OpKind::Kernel, t(0.0), t(1.0), 1, "k");
        let g = tr.gantt(2, 20);
        assert!(g.contains("dev0 |"));
        assert!(g.contains('#'));
        assert!(g.contains('<'));
    }

    #[test]
    fn gantt_tolerates_out_of_range_device_ids() {
        let mut tr = Trace::new();
        tr.record(0, OpKind::Kernel, t(0.0), t(1.0), 1, "k");
        // Device 5 on a "2-device" chart: rows grow instead of panicking.
        tr.record(5, OpKind::Kernel, t(0.0), t(0.5), 1, "k");
        let g = tr.gantt(2, 20);
        assert!(g.contains("dev5 |"));
        assert_eq!(g.matches('|').count(), 12, "6 rows, two bars each:\n{g}");
    }

    #[test]
    fn load_balance_ratio_is_max_over_min_completion() {
        let mut tr = Trace::new();
        tr.record(0, OpKind::Kernel, t(0.0), t(4.0), 1, "k");
        tr.record(1, OpKind::Kernel, t(0.0), t(2.0), 1, "k");
        // device 2 idle — excluded.
        let b = tr.breakdown(3);
        assert!((b.load_balance_ratio() - 2.0).abs() < 1e-12);
        // A single participant has nothing to be imbalanced against.
        let mut solo = Trace::new();
        solo.record(0, OpKind::Kernel, t(0.0), t(1.0), 1, "k");
        assert_eq!(solo.breakdown(2).load_balance_ratio(), 1.0);
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let mut tr = Trace::new();
        tr.record(0, OpKind::H2D, t(0.0), t(0.5), 1024, r#"chunk "0" \ in"#);
        tr.record(1, OpKind::Kernel, t(0.5), t(1.0), 99, "axpy");
        let json = tr.to_chrome_json();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        // Quotes and backslashes in labels must be escaped.
        assert!(json.contains(r#"chunk \"0\" \\ in"#));
        assert!(json.contains(r#""pid":1"#));
        assert!(json.contains(r#""dur":500"#), "0.5 s = 500000 us: {json}");
    }

    #[test]
    fn chrome_json_empty() {
        assert_eq!(Trace::new().to_chrome_json(), "[\n\n]\n");
    }

    #[test]
    fn labels_are_interned_once() {
        let mut tr = Trace::new();
        tr.record(0, OpKind::Kernel, t(0.0), t(1.0), 1, "axpy");
        tr.record(1, OpKind::Kernel, t(1.0), t(2.0), 1, "axpy");
        tr.record(0, OpKind::H2D, t(0.0), t(0.5), 8, "chunk-in");
        assert_eq!(tr.events()[0].label, tr.events()[1].label, "same text, same id");
        assert_ne!(tr.events()[0].label, tr.events()[2].label);
        assert_eq!(tr.label(tr.events()[2].label), "chunk-in");
    }

    #[test]
    fn clear_keeps_interned_labels_stable() {
        let mut tr = Trace::new();
        tr.record(0, OpKind::Kernel, t(0.0), t(1.0), 1, "axpy");
        let id = tr.events()[0].label;
        tr.clear();
        assert!(tr.is_empty());
        tr.record(0, OpKind::Kernel, t(0.0), t(1.0), 1, "axpy");
        assert_eq!(tr.events()[0].label, id, "re-recorded label reuses its id");
        assert_eq!(tr.label(id), "axpy");
    }

    #[test]
    fn clear_retains_event_capacity_and_labels() {
        let mut tr = Trace::new();
        for i in 0..100 {
            tr.record(0, OpKind::Kernel, t(i as f64), t(i as f64 + 0.5), 1, "axpy");
            tr.record(0, OpKind::H2D, t(i as f64), t(i as f64 + 0.1), 8, "chunk-in");
        }
        let cap = tr.events_capacity();
        let labels = tr.label_count();
        tr.clear();
        assert!(tr.is_empty());
        assert_eq!(tr.events_capacity(), cap, "clear must not shrink the event buffer");
        assert_eq!(tr.label_count(), labels, "clear must keep the label table");
        // Second run re-records the same labels: zero re-interning.
        for i in 0..100 {
            tr.record(0, OpKind::Kernel, t(i as f64), t(i as f64 + 0.5), 1, "axpy");
            tr.record(0, OpKind::H2D, t(i as f64), t(i as f64 + 0.1), 8, "chunk-in");
        }
        assert_eq!(tr.label_count(), labels, "steady state interns no new labels");
        assert_eq!(tr.events_capacity(), cap, "steady state reallocates nothing");
    }

    #[test]
    fn absorb_remaps_labels_and_keeps_times() {
        let mut a = Trace::new();
        a.record(0, OpKind::Kernel, t(0.0), t(1.0), 5, "axpy");
        a.record(0, OpKind::H2D, t(1.0), t(2.0), 8, "chunk-in");
        let mut b = Trace::new();
        // Interned in a different order, so raw ids differ between the
        // two tables and a blind event copy would mislabel.
        b.record(1, OpKind::H2D, t(2.0), t(3.0), 16, "chunk-in");
        b.record(1, OpKind::Kernel, t(3.0), t(5.0), 7, "axpy");
        b.record(1, OpKind::D2H, t(5.0), t(6.0), 4, "map-out");
        a.absorb(&b);
        assert_eq!(a.len(), 5);
        let labels: Vec<&str> = a.events().iter().map(|e| a.label(e.label)).collect();
        assert_eq!(labels, ["axpy", "chunk-in", "chunk-in", "axpy", "map-out"]);
        assert_eq!(a.label_count(), 3, "shared labels are not duplicated");
        assert_eq!(a.events()[4].start, t(5.0), "absolute times are preserved");
        assert_eq!(a.makespan(), t(6.0));
    }

    #[test]
    fn absorb_label_table_is_bounded_by_vocabulary() {
        let mut master = Trace::new();
        // 1000 "requests", each with its own fresh trace and table, all
        // drawing from the same 3-label vocabulary — the service-layer
        // steady state.
        for i in 0..1000 {
            let mut req = Trace::new();
            let at = i as f64;
            req.record(0, OpKind::H2D, t(at), t(at + 0.1), 8, "chunk-in");
            req.record(0, OpKind::Kernel, t(at + 0.1), t(at + 0.8), 5, "axpy");
            req.record(0, OpKind::D2H, t(at + 0.8), t(at + 0.9), 8, "map-out");
            master.absorb(&req);
        }
        assert_eq!(master.len(), 3000);
        assert_eq!(master.label_count(), 3, "table growth must not scale with requests");
    }

    #[test]
    fn absorb_respects_recording_level() {
        let mut src = Trace::new();
        src.record(0, OpKind::Kernel, t(0.0), t(1.0), 1, "axpy");

        let mut off = Trace::with_level(TraceLevel::Off);
        off.absorb(&src);
        assert!(off.is_empty());

        let mut spans = Trace::with_level(TraceLevel::Spans);
        spans.absorb(&src);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans.label_count(), 0);
        assert_eq!(spans.events()[0].label, LabelId::UNLABELED);

        // Absorbing an unlabeled trace into a Full one keeps UNLABELED.
        let mut full = Trace::new();
        full.absorb(&spans);
        assert_eq!(full.events()[0].label, LabelId::UNLABELED);
        assert_eq!(full.label_count(), 0);
    }

    #[test]
    fn level_off_records_nothing() {
        let mut tr = Trace::with_level(TraceLevel::Off);
        tr.record(0, OpKind::Kernel, t(0.0), t(1.0), 1, "axpy");
        assert!(tr.is_empty());
        assert_eq!(tr.label_count(), 0, "no interning at Off");
        assert_eq!(tr.level(), TraceLevel::Off);
    }

    #[test]
    fn level_spans_keeps_times_drops_labels() {
        let mut full = Trace::new();
        let mut spans = Trace::with_level(TraceLevel::Spans);
        for tr in [&mut full, &mut spans] {
            tr.record(0, OpKind::Kernel, t(0.0), t(3.0), 5, "axpy");
            tr.record(1, OpKind::H2D, t(0.0), t(1.0), 64, "chunk-in");
        }
        assert_eq!(spans.len(), full.len());
        assert_eq!(spans.label_count(), 0, "no interning at Spans");
        assert_eq!(spans.label(spans.events()[0].label), "");
        // Breakdown math is identical to Full.
        let (bf, bs) = (full.breakdown(2), spans.breakdown(2));
        assert_eq!(bs.makespan(), bf.makespan());
        assert_eq!(bs.busy(0, OpKind::Kernel), bf.busy(0, OpKind::Kernel));
        assert_eq!(bs.imbalance_pct(), bf.imbalance_pct());
    }

    #[test]
    fn default_level_is_full() {
        assert_eq!(Trace::new().level(), TraceLevel::Full);
        let mut tr = Trace::new();
        tr.set_level(TraceLevel::Off);
        tr.record(0, OpKind::Kernel, t(0.0), t(1.0), 1, "k");
        tr.set_level(TraceLevel::Full);
        tr.record(0, OpKind::Kernel, t(1.0), t(2.0), 1, "k");
        assert_eq!(tr.len(), 1, "only the Full-level record lands");
        tr.clear();
        assert_eq!(tr.level(), TraceLevel::Full, "clear keeps the level");
    }

    #[test]
    fn empty_trace_behaves() {
        let tr = Trace::new();
        assert!(tr.is_empty());
        assert_eq!(tr.makespan(), SimTime::ZERO);
        assert_eq!(tr.breakdown(2).imbalance_pct(), 0.0);
        assert_eq!(tr.gantt(2, 10), "");
    }
}
