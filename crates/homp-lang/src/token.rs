//! Lexer for the HOMP directive language.
//!
//! Directives are single logical lines such as
//!
//! ```text
//! #pragma omp parallel target device(*) \
//!     map(tofrom: y[0:n] partition([BLOCK])) \
//!     map(to: x[0:n] partition([BLOCK]), a, n)
//! ```
//!
//! The lexer understands identifiers, integer literals, percentages
//! (`2%`), punctuation, and strips the `#pragma omp` prefix and
//! line-continuation backslashes.

/// A lexical token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// Byte offset of the first character, for error messages.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword: `parallel`, `map`, `tofrom`, `BLOCK`, …
    Ident(String),
    /// Unsigned integer literal.
    Int(u64),
    /// Integer percentage, e.g. `15%` (used by schedule parameters).
    Percent(u64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Percent(v) => write!(f, "percentage `{v}%`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Eof => write!(f, "end of directive"),
        }
    }
}

/// Lexing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Strip an optional `#pragma omp` (or `#pragma homp`) prefix and
/// line-continuation backslashes, returning the clause text.
pub fn strip_pragma(src: &str) -> String {
    let joined: String = src.replace("\\\n", " ").replace('\\', " ");
    let trimmed = joined.trim();
    let without = trimmed
        .strip_prefix("#pragma")
        .map(str::trim_start)
        .map(|rest| {
            rest.strip_prefix("omp")
                .or_else(|| rest.strip_prefix("homp"))
                .map(str::trim_start)
                .unwrap_or(rest)
        })
        .unwrap_or(trimmed);
    without.to_string()
}

/// Tokenize directive text (after [`strip_pragma`]).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                out.push(Token { kind: TokenKind::LParen, offset: start });
                i += 1;
            }
            ')' => {
                out.push(Token { kind: TokenKind::RParen, offset: start });
                i += 1;
            }
            '[' => {
                out.push(Token { kind: TokenKind::LBracket, offset: start });
                i += 1;
            }
            ']' => {
                out.push(Token { kind: TokenKind::RBracket, offset: start });
                i += 1;
            }
            ',' => {
                out.push(Token { kind: TokenKind::Comma, offset: start });
                i += 1;
            }
            ':' => {
                out.push(Token { kind: TokenKind::Colon, offset: start });
                i += 1;
            }
            '*' => {
                out.push(Token { kind: TokenKind::Star, offset: start });
                i += 1;
            }
            '+' => {
                out.push(Token { kind: TokenKind::Plus, offset: start });
                i += 1;
            }
            '-' => {
                out.push(Token { kind: TokenKind::Minus, offset: start });
                i += 1;
            }
            '/' => {
                out.push(Token { kind: TokenKind::Slash, offset: start });
                i += 1;
            }
            '0'..='9' => {
                let mut v: u64 = 0;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    v = v
                        .checked_mul(10)
                        .and_then(|v| v.checked_add((bytes[i] - b'0') as u64))
                        .ok_or(LexError {
                            offset: start,
                            message: "integer literal overflows u64".into(),
                        })?;
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'%' {
                    i += 1;
                    out.push(Token { kind: TokenKind::Percent(v), offset: start });
                } else {
                    out.push(Token { kind: TokenKind::Int(v), offset: start });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                return Err(LexError {
                    offset: start,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    out.push(Token { kind: TokenKind::Eof, offset: bytes.len() });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_device_clause() {
        assert_eq!(
            kinds("device(0:*)"),
            vec![
                TokenKind::Ident("device".into()),
                TokenKind::LParen,
                TokenKind::Int(0),
                TokenKind::Colon,
                TokenKind::Star,
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_percentage() {
        assert_eq!(kinds("2%"), vec![TokenKind::Percent(2), TokenKind::Eof]);
    }

    #[test]
    fn detached_percent_rejected() {
        assert!(lex("%").is_err());
        assert!(lex("15 %").is_err());
    }

    #[test]
    fn strips_pragma_and_continuations() {
        let s = strip_pragma("#pragma omp parallel target \\\n device(*)");
        assert_eq!(s, "parallel target   device(*)");
    }

    #[test]
    fn strip_pragma_passthrough_without_prefix() {
        assert_eq!(strip_pragma("map(to: x)"), "map(to: x)");
    }

    #[test]
    fn lexes_array_section() {
        let k = kinds("y[0:n]");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("y".into()),
                TokenKind::LBracket,
                TokenKind::Int(0),
                TokenKind::Colon,
                TokenKind::Ident("n".into()),
                TokenKind::RBracket,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn offsets_point_into_source() {
        let toks = lex("map(to: x)").unwrap();
        let x = toks.iter().find(|t| t.kind == TokenKind::Ident("x".into())).unwrap();
        assert_eq!(x.offset, 8);
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("map(to: x @)").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.offset, 10);
    }

    #[test]
    fn overflow_is_an_error() {
        assert!(lex("99999999999999999999999999").is_err());
    }
}
