//! Recursive-descent parser for HOMP directives.
//!
//! Accepts every directive in the paper's listings (Figures 1–3),
//! including the extended `device`, `map … partition … halo`,
//! `distribute dist_schedule(target: …)` and `halo_exchange` forms, and
//! produces the [`crate::ast`] types. Errors carry the byte offset of
//! the offending token.

use crate::ast::*;
use crate::token::{lex, strip_pragma, Token, TokenKind};

/// Parse error with source offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the (pragma-stripped) directive text.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one directive (with or without the `#pragma omp` prefix,
/// line-continuation backslashes allowed).
pub fn parse_directive(src: &str) -> Result<Directive, ParseError> {
    let text = strip_pragma(src);
    let tokens = lex(&text)
        .map_err(|e| ParseError { offset: e.offset, message: e.message })?;
    Parser { tokens, pos: 0 }.directive()
}

/// Parse the evaluation-notation algorithm strings of Table II, e.g.
/// `"SCHED_DYNAMIC,2%"`, `"MODEL_1_AUTO,-1,15%"`,
/// `"SCHED_PROFILE_AUTO,10%,15%"`. Returns the schedule kind and the
/// optional CUTOFF percentage.
pub fn parse_algorithm_notation(src: &str) -> Result<(ScheduleKind, Option<u64>), ParseError> {
    let tokens =
        lex(src).map_err(|e| ParseError { offset: e.offset, message: e.message })?;
    let mut p = Parser { tokens, pos: 0 };
    let name = p.expect_ident()?;
    let mut first: Option<Option<u64>> = None; // Some(None) = explicit -1
    let mut second: Option<u64> = None;
    if p.eat(&TokenKind::Comma) {
        first = Some(p.notation_param()?);
        if p.eat(&TokenKind::Comma) {
            second = p.notation_param()?;
        }
    }
    p.expect(&TokenKind::Eof)?;
    let chunk = first.flatten();
    let kind = match name.as_str() {
        "BLOCK" => ScheduleKind::Block,
        "AUTO" => ScheduleKind::Auto,
        "SCHED_DYNAMIC" | "SCED_DYNAMIC" => ScheduleKind::Dynamic { chunk_pct: chunk },
        "SCHED_GUIDED" | "SCED_GUIDED" => ScheduleKind::Guided { chunk_pct: chunk },
        "MODEL_1_AUTO" => ScheduleKind::Model1,
        "MODEL_2_AUTO" => ScheduleKind::Model2,
        "SCHED_PROFILE_AUTO" | "SCED_PROFILE_AUTO" => {
            ScheduleKind::ProfileAuto { sample_pct: chunk }
        }
        "MODEL_PROFILE_AUTO" => ScheduleKind::ModelProfile { sample_pct: chunk },
        "WORK_ASSIST" => ScheduleKind::WorkAssist { min_pct: chunk },
        other => {
            return Err(ParseError {
                offset: 0,
                message: format!("unknown algorithm `{other}`"),
            })
        }
    };
    Ok((kind, second))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError { offset: self.offset(), message }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_int(&mut self) -> Result<u64, ParseError> {
        match *self.peek() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v)
            }
            ref other => Err(self.err(format!("expected integer, found {other}"))),
        }
    }

    /// Table-II parameter: `N%`, `N`, or `-1` (meaning "unused").
    fn notation_param(&mut self) -> Result<Option<u64>, ParseError> {
        match *self.peek() {
            TokenKind::Percent(v) => {
                self.bump();
                Ok(Some(v))
            }
            TokenKind::Int(v) => {
                self.bump();
                Ok(Some(v))
            }
            TokenKind::Minus => {
                self.bump();
                self.expect_int()?;
                Ok(None)
            }
            ref other => Err(self.err(format!("expected parameter, found {other}"))),
        }
    }

    fn directive(&mut self) -> Result<Directive, ParseError> {
        let mut constructs = Vec::new();
        let mut halo_exchange_var = None;

        // Construct keywords come first, as bare identifiers.
        while let TokenKind::Ident(word) = self.peek().clone() {
            let kw = match word.as_str() {
                "parallel" => Some(ConstructKeyword::Parallel),
                "for" => Some(ConstructKeyword::For),
                "target" => Some(ConstructKeyword::Target),
                "data" => Some(ConstructKeyword::Data),
                "distribute" => Some(ConstructKeyword::Distribute),
                "teams" => Some(ConstructKeyword::Teams),
                "halo_exchange" => Some(ConstructKeyword::HaloExchange),
                "update" => Some(ConstructKeyword::Update),
                _ => None,
            };
            match kw {
                Some(k) => {
                    self.bump();
                    constructs.push(k);
                    if k == ConstructKeyword::HaloExchange && self.eat(&TokenKind::LParen) {
                        halo_exchange_var = Some(self.expect_ident()?);
                        self.expect(&TokenKind::RParen)?;
                    }
                }
                None => break,
            }
        }
        if constructs.is_empty() {
            return Err(self.err("directive must start with a construct keyword".into()));
        }

        let mut clauses = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::Eof => break,
                TokenKind::Ident(word) => {
                    // Construct keywords may appear between clauses (the
                    // paper writes `collapse(2) distribute dist_schedule`).
                    let late_kw = match word.as_str() {
                        "parallel" => Some(ConstructKeyword::Parallel),
                        "for" => Some(ConstructKeyword::For),
                        "target" => Some(ConstructKeyword::Target),
                        "data" => Some(ConstructKeyword::Data),
                        "distribute" => Some(ConstructKeyword::Distribute),
                        "teams" => Some(ConstructKeyword::Teams),
                        "update" => Some(ConstructKeyword::Update),
                        _ => None,
                    };
                    if let Some(k) = late_kw {
                        self.bump();
                        if !constructs.contains(&k) {
                            constructs.push(k);
                        }
                        continue;
                    }
                    let clause = match word.as_str() {
                        "device" => self.device_clause()?,
                        "map" => self.map_clause()?,
                        "dist_schedule" => self.dist_schedule_clause()?,
                        "collapse" => self.collapse_clause()?,
                        "reduction" => self.reduction_clause()?,
                        "num_threads" => self.num_threads_clause()?,
                        "shared" => Clause::Shared(self.ident_list_clause()?),
                        "private" => Clause::Private(self.ident_list_clause()?),
                        "nowait" => {
                            self.bump();
                            Clause::Nowait
                        }
                        "depend" => self.depend_clause()?,
                        // `to(...)` / `from(...)` are motion clauses and
                        // only mean something on `target update`; anywhere
                        // else they stay unknown (map directions live
                        // *inside* `map(...)`).
                        "to" if constructs.contains(&ConstructKeyword::Update) => {
                            Clause::UpdateTo(self.update_items()?)
                        }
                        "from" if constructs.contains(&ConstructKeyword::Update) => {
                            Clause::UpdateFrom(self.update_items()?)
                        }
                        other => {
                            return Err(self.err(format!("unknown clause `{other}`")));
                        }
                    };
                    clauses.push(clause);
                }
                other => return Err(self.err(format!("expected a clause, found {other}"))),
            }
        }
        Ok(Directive { constructs, clauses, halo_exchange_var })
    }

    fn device_clause(&mut self) -> Result<Clause, ParseError> {
        self.bump(); // device
        self.expect(&TokenKind::LParen)?;
        let mut entries = Vec::new();
        loop {
            entries.push(self.device_entry()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Clause::Device(DeviceSpecifier { entries }))
    }

    fn device_entry(&mut self) -> Result<DeviceEntry, ParseError> {
        if self.eat(&TokenKind::Star) {
            return Ok(DeviceEntry::All);
        }
        if let TokenKind::Ident(name) = self.peek().clone() {
            // Standard OpenMP `device(devid)`: a scalar variable.
            self.bump();
            return Ok(DeviceEntry::Var(name));
        }
        let start = self.expect_int()?;
        let mut count = Count::One;
        let mut filter = None;
        if self.eat(&TokenKind::Colon) {
            match self.peek().clone() {
                TokenKind::Star => {
                    self.bump();
                    count = Count::All;
                }
                TokenKind::Int(v) => {
                    self.bump();
                    count = Count::N(v);
                }
                TokenKind::Ident(_) => {
                    // `0:HOMP_DEVICE_NVGPU` — count omitted, filter given.
                    filter = Some(self.expect_ident()?);
                    return Ok(DeviceEntry::Range { start, count, filter });
                }
                other => {
                    return Err(self.err(format!("expected count or filter, found {other}")))
                }
            }
            if self.eat(&TokenKind::Colon) {
                filter = Some(self.expect_ident()?);
            }
        }
        Ok(DeviceEntry::Range { start, count, filter })
    }

    fn map_clause(&mut self) -> Result<Clause, ParseError> {
        self.bump(); // map
        self.expect(&TokenKind::LParen)?;
        let dir_word = self.expect_ident()?;
        let dir = match dir_word.as_str() {
            "to" => MapDir::To,
            "from" => MapDir::From,
            "tofrom" => MapDir::ToFrom,
            "alloc" => MapDir::Alloc,
            other => return Err(self.err(format!("unknown map direction `{other}`"))),
        };
        self.expect(&TokenKind::Colon)?;
        let mut items = Vec::new();
        loop {
            items.push(self.map_item()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Clause::Map(MapClause { dir, items }))
    }

    /// Item list of a `target update` motion clause: `to(a, b[0:n])`.
    /// Items reuse the map-item grammar (sections allowed, partitions
    /// meaningless but tolerated by the shared parser).
    fn update_items(&mut self) -> Result<Vec<MapItem>, ParseError> {
        self.bump(); // to | from
        self.expect(&TokenKind::LParen)?;
        let mut items = Vec::new();
        loop {
            items.push(self.map_item()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(items)
    }

    fn map_item(&mut self) -> Result<MapItem, ParseError> {
        let name = self.expect_ident()?;
        if *self.peek() != TokenKind::LBracket {
            return Ok(MapItem::Scalar(name));
        }
        let mut dims = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            let start = self.expr()?;
            self.expect(&TokenKind::Colon)?;
            let len = self.expr()?;
            self.expect(&TokenKind::RBracket)?;
            dims.push(SectionDim { start, len });
        }
        let mut partition = None;
        let mut halo = None;
        loop {
            match self.peek().clone() {
                TokenKind::Ident(w) if w == "partition" && partition.is_none() => {
                    partition = Some(self.partition_spec()?);
                }
                TokenKind::Ident(w) if w == "halo" && halo.is_none() => {
                    halo = Some(self.halo_spec()?);
                }
                _ => break,
            }
        }
        Ok(MapItem::Array { section: ArraySection { name, dims }, partition, halo })
    }

    fn partition_spec(&mut self) -> Result<PartitionSpec, ParseError> {
        self.bump(); // partition
        self.expect(&TokenKind::LParen)?;
        let mut dims = Vec::new();
        loop {
            let bracketed = self.eat(&TokenKind::LBracket);
            let policy = self.dist_policy()?;
            if bracketed {
                self.expect(&TokenKind::RBracket)?;
            }
            dims.push((policy, bracketed));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(PartitionSpec { dims })
    }

    fn dist_policy(&mut self) -> Result<DistPolicy, ParseError> {
        let name = self.expect_ident()?;
        match name.as_str() {
            "FULL" => Ok(DistPolicy::Full),
            "BLOCK" => Ok(DistPolicy::Block),
            "AUTO" => Ok(DistPolicy::Auto),
            "ALIGN" => {
                self.expect(&TokenKind::LParen)?;
                let target = self.expect_ident()?;
                let ratio = if self.eat(&TokenKind::Comma) { self.expect_int()? } else { 1 };
                self.expect(&TokenKind::RParen)?;
                Ok(DistPolicy::Align { target, ratio })
            }
            other => Err(self.err(format!("unknown distribution policy `{other}`"))),
        }
    }

    fn halo_spec(&mut self) -> Result<HaloSpec, ParseError> {
        self.bump(); // halo
        self.expect(&TokenKind::LParen)?;
        let mut widths = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                match *self.peek() {
                    TokenKind::Int(v) => {
                        self.bump();
                        widths.push(Some(v));
                    }
                    _ => widths.push(None),
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
                // `halo(1,)` — a trailing comma adds an empty width.
                if *self.peek() == TokenKind::RParen {
                    widths.push(None);
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(HaloSpec { widths })
    }

    fn dist_schedule_clause(&mut self) -> Result<Clause, ParseError> {
        self.bump(); // dist_schedule
        self.expect(&TokenKind::LParen)?;
        let level_word = self.expect_ident()?;
        let level = match level_word.as_str() {
            "target" => ScheduleLevel::Target,
            "teams" => ScheduleLevel::Teams,
            other => return Err(self.err(format!("unknown schedule level `{other}`"))),
        };
        self.expect(&TokenKind::Colon)?;
        let bracketed = self.eat(&TokenKind::LBracket);
        let kind = self.schedule_kind(bracketed)?;
        if bracketed {
            self.expect(&TokenKind::RBracket)?;
        }
        let mut cutoff_pct = None;
        if self.eat(&TokenKind::Comma) {
            match self.peek().clone() {
                TokenKind::Ident(w) if w == "CUTOFF" => {
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    cutoff_pct = Some(self.expect_pct()?);
                    self.expect(&TokenKind::RParen)?;
                }
                TokenKind::Percent(v) => {
                    self.bump();
                    cutoff_pct = Some(v);
                }
                other => return Err(self.err(format!("expected CUTOFF, found {other}"))),
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Clause::DistSchedule(DistSchedule { level, kind, cutoff_pct }))
    }

    fn expect_pct(&mut self) -> Result<u64, ParseError> {
        match *self.peek() {
            TokenKind::Percent(v) => {
                self.bump();
                Ok(v)
            }
            TokenKind::Int(v) => {
                self.bump();
                Ok(v)
            }
            ref other => Err(self.err(format!("expected percentage, found {other}"))),
        }
    }

    fn schedule_kind(&mut self, in_brackets: bool) -> Result<ScheduleKind, ParseError> {
        let name = self.expect_ident()?;
        let trailing_pct = |p: &mut Self| -> Result<Option<u64>, ParseError> {
            if in_brackets && *p.peek() == TokenKind::Comma && matches!(p.peek2(), TokenKind::Percent(_) | TokenKind::Int(_)) {
                p.bump();
                Ok(Some(p.expect_pct()?))
            } else {
                Ok(None)
            }
        };
        match name.as_str() {
            "BLOCK" => Ok(ScheduleKind::Block),
            "AUTO" => Ok(ScheduleKind::Auto),
            "ALIGN" => {
                self.expect(&TokenKind::LParen)?;
                let target = self.expect_ident()?;
                let ratio = if self.eat(&TokenKind::Comma) { self.expect_int()? } else { 1 };
                self.expect(&TokenKind::RParen)?;
                Ok(ScheduleKind::Align { target, ratio })
            }
            "SCHED_DYNAMIC" | "SCED_DYNAMIC" => {
                Ok(ScheduleKind::Dynamic { chunk_pct: trailing_pct(self)? })
            }
            "SCHED_GUIDED" | "SCED_GUIDED" => {
                Ok(ScheduleKind::Guided { chunk_pct: trailing_pct(self)? })
            }
            "MODEL_1_AUTO" => Ok(ScheduleKind::Model1),
            "MODEL_2_AUTO" => Ok(ScheduleKind::Model2),
            "SCHED_PROFILE_AUTO" | "SCED_PROFILE_AUTO" => {
                Ok(ScheduleKind::ProfileAuto { sample_pct: trailing_pct(self)? })
            }
            "MODEL_PROFILE_AUTO" => {
                Ok(ScheduleKind::ModelProfile { sample_pct: trailing_pct(self)? })
            }
            "WORK_ASSIST" => {
                Ok(ScheduleKind::WorkAssist { min_pct: trailing_pct(self)? })
            }
            other => Err(self.err(format!("unknown schedule kind `{other}`"))),
        }
    }

    fn collapse_clause(&mut self) -> Result<Clause, ParseError> {
        self.bump(); // collapse
        self.expect(&TokenKind::LParen)?;
        let n = self.expect_int()?;
        self.expect(&TokenKind::RParen)?;
        if n == 0 {
            return Err(self.err("collapse depth must be at least 1".into()));
        }
        Ok(Clause::Collapse(n))
    }

    fn reduction_clause(&mut self) -> Result<Clause, ParseError> {
        self.bump(); // reduction
        self.expect(&TokenKind::LParen)?;
        let op = match self.bump() {
            TokenKind::Plus => ReductionOp::Sum,
            TokenKind::Star => ReductionOp::Prod,
            TokenKind::Ident(w) if w == "max" => ReductionOp::Max,
            TokenKind::Ident(w) if w == "min" => ReductionOp::Min,
            other => return Err(self.err(format!("unknown reduction operator {other}"))),
        };
        self.expect(&TokenKind::Colon)?;
        let mut vars = vec![self.expect_ident()?];
        while self.eat(&TokenKind::Comma) {
            vars.push(self.expect_ident()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Clause::Reduction { op, vars })
    }

    /// `depend(in: a, b)` / `depend(out: c)` / `depend(inout: d)`.
    fn depend_clause(&mut self) -> Result<Clause, ParseError> {
        self.bump(); // depend
        self.expect(&TokenKind::LParen)?;
        let kind_word = self.expect_ident()?;
        let kind = match kind_word.as_str() {
            "in" => DependKind::In,
            "out" => DependKind::Out,
            "inout" => DependKind::InOut,
            other => return Err(self.err(format!("unknown depend kind `{other}`"))),
        };
        self.expect(&TokenKind::Colon)?;
        let mut vars = vec![self.expect_ident()?];
        while self.eat(&TokenKind::Comma) {
            vars.push(self.expect_ident()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Clause::Depend { kind, vars })
    }

    fn num_threads_clause(&mut self) -> Result<Clause, ParseError> {
        self.bump(); // num_threads
        self.expect(&TokenKind::LParen)?;
        let e = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        Ok(Clause::NumThreads(e))
    }

    fn ident_list_clause(&mut self) -> Result<Vec<String>, ParseError> {
        self.bump(); // shared / private
        self.expect(&TokenKind::LParen)?;
        let mut vars = vec![self.expect_ident()?];
        while self.eat(&TokenKind::Comma) {
            vars.push(self.expect_ident()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(vars)
    }

    // expr := term (("+"|"-") term)*
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    // term := factor (("*"|"/") factor)*
    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.factor()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v as i64))
            }
            TokenKind::Ident(n) => {
                self.bump();
                Ok(Expr::Ident(n))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_axpy_homp_v1_map() {
        let d = parse_directive(
            "#pragma omp parallel target device (*) \
             map(tofrom: y[0:n] partition([BLOCK])) \
             map(to: x[0:n] partition([BLOCK]),a,n)",
        )
        .unwrap();
        assert!(d.is_parallel_target());
        assert_eq!(d.device().unwrap().entries, vec![DeviceEntry::All]);
        let maps: Vec<_> = d.maps().collect();
        assert_eq!(maps.len(), 2);
        assert_eq!(maps[0].dir, MapDir::ToFrom);
        assert_eq!(maps[1].items.len(), 3);
        match &maps[1].items[0] {
            MapItem::Array { section, partition, halo } => {
                assert_eq!(section.name, "x");
                assert_eq!(section.dims.len(), 1);
                assert_eq!(
                    partition.as_ref().unwrap().dims,
                    vec![(DistPolicy::Block, true)]
                );
                assert!(halo.is_none());
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(maps[1].items[1], MapItem::Scalar("a".into()));
    }

    #[test]
    fn parses_nowait_and_depend() {
        let d = parse_directive(
            "#pragma omp parallel for target device(*) nowait \
             depend(in: u) depend(out: unew, resid) depend(inout: scratch)",
        )
        .unwrap();
        assert!(d.is_nowait());
        let ins: Vec<_> = d.depends_in().collect();
        let outs: Vec<_> = d.depends_out().collect();
        assert_eq!(ins, ["u", "scratch"]);
        assert_eq!(outs, ["unew", "resid", "scratch"]);
        // Canonical form round-trips through the parser.
        let printed = d.to_string();
        let again = parse_directive(&printed).unwrap();
        assert_eq!(d, again);
    }

    #[test]
    fn depend_without_nowait_and_vice_versa() {
        let d = parse_directive("target nowait").unwrap();
        assert!(d.is_nowait());
        assert_eq!(d.depends_in().count(), 0);
        let d = parse_directive("target depend(in: a)").unwrap();
        assert!(!d.is_nowait());
        assert_eq!(d.depends_in().collect::<Vec<_>>(), ["a"]);
    }

    #[test]
    fn rejects_unknown_depend_kind() {
        let err = parse_directive("target depend(sideways: a)").unwrap_err();
        assert!(err.message.contains("depend kind"), "{err}");
    }

    #[test]
    fn parses_dist_schedule_align() {
        let d = parse_directive(
            "#pragma omp parallel for distribute dist_schedule(target:[ALIGN(x)])",
        )
        .unwrap();
        let s = d.dist_schedule().unwrap();
        assert_eq!(s.level, ScheduleLevel::Target);
        assert_eq!(s.kind, ScheduleKind::Align { target: "x".into(), ratio: 1 });
    }

    #[test]
    fn parses_dist_schedule_auto_with_cutoff() {
        let d = parse_directive(
            "parallel for target distribute dist_schedule(target:[AUTO], CUTOFF(15%))",
        )
        .unwrap();
        let s = d.dist_schedule().unwrap();
        assert_eq!(s.kind, ScheduleKind::Auto);
        assert_eq!(s.cutoff_pct, Some(15));
    }

    #[test]
    fn parses_dynamic_with_chunk() {
        let d = parse_directive(
            "parallel for target distribute dist_schedule(target:[SCHED_DYNAMIC,2%])",
        )
        .unwrap();
        assert_eq!(
            d.dist_schedule().unwrap().kind,
            ScheduleKind::Dynamic { chunk_pct: Some(2) }
        );
    }

    #[test]
    fn parses_jacobi_data_directive() {
        let d = parse_directive(
            "#pragma omp parallel target data device(*) \
             map(to:n, m, omega, ax, ay, b, \
               f[0:n][0:m] partition([ALIGN(loop1)], FULL)) \
             map(tofrom:u[0:n][0:m] partition([ALIGN(loop1)], FULL)) \
             map(alloc:uold[0:n][0:m] partition([ALIGN(loop1)], FULL) halo(1,))",
        )
        .unwrap();
        assert!(d.constructs.contains(&ConstructKeyword::Data));
        let maps: Vec<_> = d.maps().collect();
        assert_eq!(maps.len(), 3);
        assert_eq!(maps[0].items.len(), 7);
        match &maps[2].items[0] {
            MapItem::Array { section, partition, halo } => {
                assert_eq!(section.name, "uold");
                assert_eq!(section.dims.len(), 2);
                let p = partition.as_ref().unwrap();
                assert_eq!(p.dims.len(), 2);
                assert_eq!(
                    p.dims[0],
                    (DistPolicy::Align { target: "loop1".into(), ratio: 1 }, true)
                );
                assert_eq!(p.dims[1], (DistPolicy::Full, false));
                assert_eq!(halo.as_ref().unwrap().widths, vec![Some(1), None]);
            }
            other => panic!("expected uold array, got {other:?}"),
        }
    }

    #[test]
    fn parses_target_update() {
        let d = parse_directive("#pragma omp target update to(u[0:n][0:m], f) from(uold)")
            .unwrap();
        assert!(d.is_target_update());
        let to: Vec<_> = d.update_to().collect();
        assert_eq!(to.len(), 2);
        match to[0] {
            MapItem::Array { section, .. } => assert_eq!(section.name, "u"),
            other => panic!("expected array item, got {other:?}"),
        }
        assert_eq!(to[1], &MapItem::Scalar("f".into()));
        let from: Vec<_> = d.update_from().collect();
        assert_eq!(from, vec![&MapItem::Scalar("uold".into())]);
        // Display round-trips through the parser.
        let again = parse_directive(&d.to_string()).unwrap();
        assert_eq!(again, d);
    }

    #[test]
    fn to_from_clauses_rejected_outside_update() {
        let err = parse_directive("#pragma omp target to(u)").unwrap_err();
        assert!(err.to_string().contains("unknown clause"), "{err}");
    }

    #[test]
    fn parses_halo_exchange() {
        let d = parse_directive("#pragma omp halo_exchange (uold)").unwrap();
        assert_eq!(d.constructs, vec![ConstructKeyword::HaloExchange]);
        assert_eq!(d.halo_exchange_var, Some("uold".into()));
    }

    #[test]
    fn parses_collapse_and_reduction() {
        let d = parse_directive(
            "#pragma omp parallel for target device(*) collapse(2) \
             reduction(+:error) distribute dist_schedule(target:[AUTO])",
        )
        .unwrap();
        assert_eq!(d.collapse(), 2);
        assert!(d
            .clauses
            .iter()
            .any(|c| matches!(c, Clause::Reduction { op: ReductionOp::Sum, vars } if vars == &["error".to_string()])));
    }

    #[test]
    fn parses_device_specifier_forms() {
        let forms: &[(&str, usize)] = &[
            ("device(0:*)", 1),
            ("device(0, 2, 3, 5)", 4),
            ("device(0:2, 4:2)", 2),
            ("device(0:*:HOMP_DEVICE_NVGPU)", 1),
        ];
        for (src, n) in forms {
            let d = parse_directive(&format!("target {src}")).unwrap();
            assert_eq!(d.device().unwrap().entries.len(), *n, "{src}");
        }
        let d = parse_directive("target device(0:2, 4:2)").unwrap();
        assert_eq!(
            d.device().unwrap().entries[1],
            DeviceEntry::Range { start: 4, count: Count::N(2), filter: None }
        );
    }

    #[test]
    fn parses_expressions_in_sections() {
        let d = parse_directive("target map(to: y[start:size/2+1])").unwrap();
        let m = d.maps().next().unwrap();
        match &m.items[0] {
            MapItem::Array { section, .. } => {
                let dim = &section.dims[0];
                let mut env = Env::new();
                env.insert("start".into(), 4);
                env.insert("size".into(), 10);
                assert_eq!(dim.start.eval(&env), Ok(4));
                assert_eq!(dim.len.eval(&env), Ok(6));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_reports_offset() {
        let err = parse_directive("parallel for floop(3)").unwrap_err();
        assert!(err.message.contains("floop"));
        assert!(err.offset > 0);
    }

    #[test]
    fn rejects_empty_directive() {
        assert!(parse_directive("#pragma omp").is_err());
    }

    #[test]
    fn rejects_collapse_zero() {
        assert!(parse_directive("parallel for collapse(0)").is_err());
    }

    #[test]
    fn rejects_unknown_map_direction() {
        let err = parse_directive("target map(upward: x)").unwrap_err();
        assert!(err.message.contains("upward"));
    }

    #[test]
    fn table_ii_notations_parse() {
        let cases: &[(&str, ScheduleKind, Option<u64>)] = &[
            ("BLOCK", ScheduleKind::Block, None),
            ("SCED_DYNAMIC,2%", ScheduleKind::Dynamic { chunk_pct: Some(2) }, None),
            ("SCED_GUIDED,20%", ScheduleKind::Guided { chunk_pct: Some(20) }, None),
            ("MODEL_1_AUTO,-1,15%", ScheduleKind::Model1, Some(15)),
            ("MODEL_2_AUTO,-1,15%", ScheduleKind::Model2, Some(15)),
            (
                "SCED_PROFILE_AUTO,10%,15%",
                ScheduleKind::ProfileAuto { sample_pct: Some(10) },
                Some(15),
            ),
            (
                "MODEL_PROFILE_AUTO,10%,15%",
                ScheduleKind::ModelProfile { sample_pct: Some(10) },
                Some(15),
            ),
            ("WORK_ASSIST", ScheduleKind::WorkAssist { min_pct: None }, None),
            (
                "WORK_ASSIST,5%,15%",
                ScheduleKind::WorkAssist { min_pct: Some(5) },
                Some(15),
            ),
        ];
        for (src, kind, cutoff) in cases {
            let (k, c) = parse_algorithm_notation(src).unwrap();
            assert_eq!(&k, kind, "{src}");
            assert_eq!(&c, cutoff, "{src}");
        }
    }

    #[test]
    fn roundtrip_canonical_display() {
        let sources = [
            "#pragma omp parallel target device(*) map(tofrom: y[0:n] partition([BLOCK]))",
            "#pragma omp parallel for distribute dist_schedule(target:[AUTO])",
            "#pragma omp parallel for target device(0:2, 4:*:HOMP_DEVICE_NVGPU) collapse(2) reduction(+:error) distribute dist_schedule(target:[SCHED_DYNAMIC,2%], CUTOFF(15%))",
            "#pragma omp parallel for distribute dist_schedule(target:[WORK_ASSIST,5%], CUTOFF(15%))",
            "#pragma omp halo_exchange (uold)",
            "#pragma omp parallel target data device(*) map(alloc: uold[0:n][0:m] partition([ALIGN(loop1)], FULL) halo(1,))",
        ];
        for src in sources {
            let d1 = parse_directive(src).unwrap();
            let printed = d1.to_string();
            let d2 = parse_directive(&printed)
                .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
            assert_eq!(d1, d2, "roundtrip mismatch for `{src}`");
        }
    }
}

#[cfg(test)]
mod expr_tests {
    use super::*;

    fn eval_section_len(src: &str, env: &Env) -> i64 {
        let d = parse_directive(&format!("target map(to: x[0:{src}])")).unwrap();
        let m = d.maps().next().unwrap().clone();
        match &m.items[0] {
            MapItem::Array { section, .. } => section.dims[0].len.eval(env).unwrap(),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let env = Env::new();
        assert_eq!(eval_section_len("2+3*4", &env), 14);
        assert_eq!(eval_section_len("2*3+4", &env), 10);
        assert_eq!(eval_section_len("(2+3)*4", &env), 20);
    }

    #[test]
    fn left_associative_division() {
        let env = Env::new();
        assert_eq!(eval_section_len("100/5/2", &env), 10);
        assert_eq!(eval_section_len("100-20-30", &env), 50);
    }

    #[test]
    fn mixed_variables_and_parens() {
        let mut env = Env::new();
        env.insert("n".into(), 12);
        env.insert("m".into(), 5);
        assert_eq!(eval_section_len("(n+m)*2-n/3", &env), 30);
    }

    #[test]
    fn nested_parens() {
        let env = Env::new();
        assert_eq!(eval_section_len("((((7))))", &env), 7);
    }

    #[test]
    fn expr_display_parenthesizes_unambiguously() {
        let d = parse_directive("target map(to: x[0:a+b*c])").unwrap();
        let printed = d.to_string();
        let d2 = parse_directive(&printed).unwrap();
        assert_eq!(d, d2, "printed form `{printed}` must reparse identically");
    }
}
