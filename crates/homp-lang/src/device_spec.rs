//! Resolution of `device(...)` specifiers against a concrete machine.
//!
//! A [`crate::ast::DeviceSpecifier`] like
//! `device(0:*:HOMP_DEVICE_NVGPU)` is resolved against the machine's
//! device list into concrete device IDs. This module is
//! machine-representation-agnostic: the caller supplies one type-name
//! string per device (`HOMP_DEVICE_HOSTCPU` / `HOMP_DEVICE_NVGPU` /
//! `HOMP_DEVICE_ITLMIC`), indexed by device ID.

use crate::ast::{Count, DeviceEntry, DeviceSpecifier, Env};

/// Error resolving a device specifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// A device ID is beyond the machine's device count.
    OutOfRange {
        /// The requested device ID.
        requested: u64,
        /// Number of devices in the machine.
        available: usize,
    },
    /// An explicit count walks past the end of the device list.
    CountOverrun {
        /// First device of the range.
        start: u64,
        /// Requested count.
        count: u64,
        /// Number of devices in the machine.
        available: usize,
    },
    /// The specifier matched no devices at all (e.g. a type filter with
    /// no devices of that type).
    Empty,
    /// A variable device entry has no binding, or a negative value.
    BadVariable {
        /// Variable name.
        name: String,
    },
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::OutOfRange { requested, available } => {
                write!(f, "device {requested} out of range (machine has {available})")
            }
            ResolveError::CountOverrun { start, count, available } => write!(
                f,
                "device range {start}:{count} overruns the machine ({available} devices)"
            ),
            ResolveError::Empty => write!(f, "device specifier selects no devices"),
            ResolveError::BadVariable { name } => {
                write!(f, "device variable `{name}` is unbound or negative")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// Resolve `spec` against a machine whose device `i` has type name
/// `device_types[i]`. Returns device IDs in specifier order with
/// duplicates removed (first occurrence wins).
pub fn resolve_devices(
    spec: &DeviceSpecifier,
    device_types: &[&str],
) -> Result<Vec<u32>, ResolveError> {
    resolve_devices_with_env(spec, device_types, &Env::new())
}

/// Like [`resolve_devices`], additionally resolving variable entries
/// (standard OpenMP `device(devid)`) against `env`.
pub fn resolve_devices_with_env(
    spec: &DeviceSpecifier,
    device_types: &[&str],
    env: &Env,
) -> Result<Vec<u32>, ResolveError> {
    let n = device_types.len();
    let mut out: Vec<u32> = Vec::new();
    let push = |id: u32, out: &mut Vec<u32>| {
        if !out.contains(&id) {
            out.push(id);
        }
    };

    for entry in &spec.entries {
        match entry {
            DeviceEntry::All => {
                for id in 0..n as u32 {
                    push(id, &mut out);
                }
            }
            DeviceEntry::Var(name) => {
                let id = match env.get(name) {
                    Some(&v) if v >= 0 => v as u64,
                    _ => return Err(ResolveError::BadVariable { name: name.clone() }),
                };
                if id as usize >= n {
                    return Err(ResolveError::OutOfRange { requested: id, available: n });
                }
                push(id as u32, &mut out);
            }
            DeviceEntry::Range { start, count, filter } => {
                if *start as usize >= n {
                    return Err(ResolveError::OutOfRange { requested: *start, available: n });
                }
                let matches_filter = |id: u64| -> bool {
                    match filter {
                        None => true,
                        Some(f) => type_matches(f, device_types[id as usize]),
                    }
                };
                match count {
                    Count::One => {
                        if matches_filter(*start) {
                            push(*start as u32, &mut out);
                        }
                    }
                    Count::N(c) => {
                        // An explicit count selects `c` consecutive
                        // devices of the filtered type.
                        let mut taken = 0u64;
                        let mut id = *start;
                        while taken < *c {
                            if id as usize >= n {
                                return Err(ResolveError::CountOverrun {
                                    start: *start,
                                    count: *c,
                                    available: n,
                                });
                            }
                            if matches_filter(id) {
                                push(id as u32, &mut out);
                                taken += 1;
                            }
                            id += 1;
                        }
                    }
                    Count::All => {
                        for id in *start..n as u64 {
                            if matches_filter(id) {
                                push(id as u32, &mut out);
                            }
                        }
                    }
                }
            }
        }
    }
    if out.is_empty() {
        return Err(ResolveError::Empty);
    }
    Ok(out)
}

/// Whether a filter name matches a device type name; both the canonical
/// `HOMP_DEVICE_*` constants and short aliases are accepted.
fn type_matches(filter: &str, type_name: &str) -> bool {
    if filter == type_name {
        return true;
    }
    fn canon(s: &str) -> &str {
        match s {
            "HOMP_DEVICE_HOSTCPU" | "host" | "cpu" | "HOSTCPU" => "HOMP_DEVICE_HOSTCPU",
            "HOMP_DEVICE_NVGPU" | "gpu" | "nvgpu" | "NVGPU" => "HOMP_DEVICE_NVGPU",
            "HOMP_DEVICE_ITLMIC" | "mic" | "itlmic" | "ITLMIC" => "HOMP_DEVICE_ITLMIC",
            other => other,
        }
    }
    canon(filter) == canon(type_name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_directive;

    /// The paper's full node: host + 4 GPUs + 2 MICs.
    const FULL: &[&str] = &[
        "HOMP_DEVICE_HOSTCPU",
        "HOMP_DEVICE_NVGPU",
        "HOMP_DEVICE_NVGPU",
        "HOMP_DEVICE_NVGPU",
        "HOMP_DEVICE_NVGPU",
        "HOMP_DEVICE_ITLMIC",
        "HOMP_DEVICE_ITLMIC",
    ];

    fn spec(src: &str) -> DeviceSpecifier {
        parse_directive(&format!("target {src}")).unwrap().device().unwrap().clone()
    }

    #[test]
    fn star_selects_everything() {
        assert_eq!(resolve_devices(&spec("device(*)"), FULL).unwrap(), vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn zero_colon_star_selects_everything() {
        assert_eq!(
            resolve_devices(&spec("device(0:*)"), FULL).unwrap(),
            vec![0, 1, 2, 3, 4, 5, 6]
        );
    }

    #[test]
    fn explicit_list() {
        assert_eq!(
            resolve_devices(&spec("device(0, 2, 3, 5)"), FULL).unwrap(),
            vec![0, 2, 3, 5]
        );
    }

    #[test]
    fn paper_example_ranges() {
        // device(0:2, 4:2) → 0,1,4,5 per the paper.
        assert_eq!(
            resolve_devices(&spec("device(0:2, 4:2)"), FULL).unwrap(),
            vec![0, 1, 4, 5]
        );
    }

    #[test]
    fn type_filter_selects_gpus() {
        assert_eq!(
            resolve_devices(&spec("device(0:*:HOMP_DEVICE_NVGPU)"), FULL).unwrap(),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn short_alias_filter() {
        assert_eq!(resolve_devices(&spec("device(0:*:mic)"), FULL).unwrap(), vec![5, 6]);
    }

    #[test]
    fn counted_filter_skips_non_matching() {
        // Two GPUs starting from device 0: devices 1 and 2.
        assert_eq!(
            resolve_devices(&spec("device(0:2:gpu)"), FULL).unwrap(),
            vec![1, 2]
        );
    }

    #[test]
    fn duplicates_removed() {
        assert_eq!(resolve_devices(&spec("device(1, 1, 0:2)"), FULL).unwrap(), vec![1, 0]);
    }

    #[test]
    fn out_of_range_start() {
        assert_eq!(
            resolve_devices(&spec("device(9)"), FULL),
            Err(ResolveError::OutOfRange { requested: 9, available: 7 })
        );
    }

    #[test]
    fn count_overrun() {
        assert_eq!(
            resolve_devices(&spec("device(5:4)"), FULL),
            Err(ResolveError::CountOverrun { start: 5, count: 4, available: 7 })
        );
    }

    #[test]
    fn empty_selection_is_error() {
        let hosts_only: &[&str] = &["HOMP_DEVICE_HOSTCPU"];
        assert_eq!(
            resolve_devices(&spec("device(0:*:gpu)"), hosts_only),
            Err(ResolveError::Empty)
        );
    }
}
