//! Parser for the HOMP directive language — the OpenMP extensions of
//! Section III of the paper.
//!
//! The paper's compiler (built on ROSE) lowers `#pragma omp` directives
//! extended with multi-device `device(...)` specifiers,
//! `map(... partition(...) halo(...))` clauses and
//! `distribute dist_schedule(target: ...)` into runtime calls. This
//! crate implements the front half of that pipeline: a lexer
//! ([`token`]), a typed AST ([`ast`]), a recursive-descent parser
//! ([`parser`]) and device-specifier resolution ([`device_spec`]).
//! `homp-core` consumes the AST and performs the lowering.
//!
//! ```
//! use homp_lang::parse_directive;
//! let d = parse_directive(
//!     "#pragma omp parallel target device(*) \
//!      map(tofrom: y[0:n] partition([BLOCK]))").unwrap();
//! assert!(d.is_parallel_target());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod ast;
pub mod device_spec;
pub mod parser;
pub mod token;

pub use ast::{
    ArraySection, BinOp, Clause, ConstructKeyword, Count, DependKind, DeviceEntry,
    DeviceSpecifier, Directive, DistPolicy, DistSchedule, Env, EvalError, Expr, HaloSpec,
    MapClause, MapDir, MapItem, PartitionSpec, ReductionOp, ScheduleKind, ScheduleLevel,
    SectionDim,
};
pub use device_spec::{resolve_devices, resolve_devices_with_env, ResolveError};
pub use parser::{parse_algorithm_notation, parse_directive, ParseError};
