//! Abstract syntax of the HOMP directive language.
//!
//! These types model, verbatim, the extensions of Section III:
//! multi-device `device(...)` specifiers, `map(...)` clauses with
//! `partition(...)` and `halo(...)` parameters, the
//! `distribute dist_schedule(target: ...)` clause, reductions, and the
//! `parallel target` composite construct.
//!
//! Every node implements `Display`, printing canonical directive text;
//! the parser accepts that text back (round-trip property tests live in
//! the parser module).

use std::collections::HashMap;
use std::fmt;

/// Integer expression appearing in array bounds and clause arguments
/// (`y[0:n]`, `num_threads(ndev)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Literal.
    Int(i64),
    /// Variable reference, resolved at offload time.
    Ident(String),
    /// Binary arithmetic.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

/// Binary arithmetic operators allowed in directive expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division)
    Div,
}

/// Variable bindings for expression evaluation at offload time.
pub type Env = HashMap<String, i64>;

/// Error evaluating an [`Expr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// An identifier had no binding in the environment.
    Unbound(String),
    /// Division by zero.
    DivideByZero,
    /// Arithmetic overflow.
    Overflow,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unbound(n) => write!(f, "unbound variable `{n}`"),
            EvalError::DivideByZero => write!(f, "division by zero"),
            EvalError::Overflow => write!(f, "arithmetic overflow"),
        }
    }
}

impl std::error::Error for EvalError {}

impl Expr {
    /// Evaluate under `env`.
    pub fn eval(&self, env: &Env) -> Result<i64, EvalError> {
        match self {
            Expr::Int(v) => Ok(*v),
            Expr::Ident(name) => {
                env.get(name).copied().ok_or_else(|| EvalError::Unbound(name.clone()))
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = lhs.eval(env)?;
                let r = rhs.eval(env)?;
                match op {
                    BinOp::Add => l.checked_add(r).ok_or(EvalError::Overflow),
                    BinOp::Sub => l.checked_sub(r).ok_or(EvalError::Overflow),
                    BinOp::Mul => l.checked_mul(r).ok_or(EvalError::Overflow),
                    BinOp::Div => {
                        if r == 0 {
                            Err(EvalError::DivideByZero)
                        } else {
                            Ok(l / r)
                        }
                    }
                }
            }
        }
    }

    /// All identifiers referenced by the expression.
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Int(_) => {}
            Expr::Ident(n) => {
                if !out.contains(n) {
                    out.push(n.clone());
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.free_vars(out);
                rhs.free_vars(out);
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Ident(n) => write!(f, "{n}"),
            Expr::Binary { op, lhs, rhs } => {
                let ops = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                };
                write!(f, "({lhs}{ops}{rhs})")
            }
        }
    }
}

/// One dimension of an array section: `[start:len]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionDim {
    /// First index mapped.
    pub start: Expr,
    /// Number of elements mapped.
    pub len: Expr,
}

impl fmt::Display for SectionDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}:{}]", self.start, self.len)
    }
}

/// An array section `name[0:n][0:m]…`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArraySection {
    /// Variable name.
    pub name: String,
    /// One entry per dimension, outermost first.
    pub dims: Vec<SectionDim>,
}

impl fmt::Display for ArraySection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for d in &self.dims {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// A distribution policy (Table I).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistPolicy {
    /// Whole range on every device (the default).
    Full,
    /// Contiguous even blocks.
    Block,
    /// Runtime decides, to balance load (loops only).
    Auto,
    /// Copy the referenced distribution, scaled by `ratio`.
    Align {
        /// Name of the loop or array whose distribution is copied.
        target: String,
        /// Scale factor (default 1).
        ratio: u64,
    },
}

impl fmt::Display for DistPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistPolicy::Full => write!(f, "FULL"),
            DistPolicy::Block => write!(f, "BLOCK"),
            DistPolicy::Auto => write!(f, "AUTO"),
            DistPolicy::Align { target, ratio } => {
                if *ratio == 1 {
                    write!(f, "ALIGN({target})")
                } else {
                    write!(f, "ALIGN({target},{ratio})")
                }
            }
        }
    }
}

/// `partition(policy, policy, …)` — one policy per array dimension. The
/// paper brackets the distributed dimension (`partition([BLOCK])`,
/// `partition([ALIGN(loop1)], FULL)`); the flag records that spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Per-dimension policies with their bracketing flag.
    pub dims: Vec<(DistPolicy, bool)>,
}

impl fmt::Display for PartitionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "partition(")?;
        for (i, (p, bracketed)) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if *bracketed {
                write!(f, "[{p}]")?;
            } else {
                write!(f, "{p}")?;
            }
        }
        write!(f, ")")
    }
}

/// `halo(w, …)` — per-dimension ghost-region widths; an omitted width
/// (`halo(1,)`) means no halo in that dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaloSpec {
    /// Halo width per dimension; `None` for dimensions without halo.
    pub widths: Vec<Option<u64>>,
}

impl fmt::Display for HaloSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "halo(")?;
        for (i, w) in self.widths.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if let Some(w) = w {
                write!(f, "{w}")?;
            }
        }
        write!(f, ")")
    }
}

/// Mapping direction of a `map` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapDir {
    /// Copy host→device before the region.
    To,
    /// Copy device→host after the region.
    From,
    /// Both directions.
    ToFrom,
    /// Allocate on the device without copies.
    Alloc,
}

impl fmt::Display for MapDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapDir::To => write!(f, "to"),
            MapDir::From => write!(f, "from"),
            MapDir::ToFrom => write!(f, "tofrom"),
            MapDir::Alloc => write!(f, "alloc"),
        }
    }
}

/// One item of a `map` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapItem {
    /// A scalar variable (`a`, `n`): replicated to every device.
    Scalar(String),
    /// An array section, optionally partitioned and haloed.
    Array {
        /// The section being mapped.
        section: ArraySection,
        /// Distribution of the section across devices.
        partition: Option<PartitionSpec>,
        /// Ghost regions for neighbourhood communication.
        halo: Option<HaloSpec>,
    },
}

impl fmt::Display for MapItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapItem::Scalar(n) => write!(f, "{n}"),
            MapItem::Array { section, partition, halo } => {
                write!(f, "{section}")?;
                if let Some(p) = partition {
                    write!(f, " {p}")?;
                }
                if let Some(h) = halo {
                    write!(f, " {h}")?;
                }
                Ok(())
            }
        }
    }
}

/// A full `map(dir: items…)` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapClause {
    /// Direction.
    pub dir: MapDir,
    /// Mapped items.
    pub items: Vec<MapItem>,
}

impl fmt::Display for MapClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "map({}: ", self.dir)?;
        for (i, it) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{it}")?;
        }
        write!(f, ")")
    }
}

/// How many devices a [`DeviceEntry`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Count {
    /// Exactly one device (the default when `:nums` is omitted).
    One,
    /// `nums` devices starting from the initial ID.
    N(u64),
    /// All devices from the initial ID (`*`).
    All,
}

/// One `device_specifier`: `initial_devid[:nums][:dev_type_filter]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceEntry {
    /// Bare `*`: every device in the system.
    All,
    /// A scalar variable (`device(devid)` in standard OpenMP), resolved
    /// against the environment at lowering time.
    Var(String),
    /// A range with optional count and type filter.
    Range {
        /// First device ID.
        start: u64,
        /// How many consecutive devices.
        count: Count,
        /// Optional type filter name (`HOMP_DEVICE_NVGPU` …).
        filter: Option<String>,
    },
}

impl fmt::Display for DeviceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceEntry::All => write!(f, "*"),
            DeviceEntry::Var(v) => write!(f, "{v}"),
            DeviceEntry::Range { start, count, filter } => {
                write!(f, "{start}")?;
                match count {
                    Count::One => {}
                    Count::N(n) => write!(f, ":{n}")?,
                    Count::All => write!(f, ":*")?,
                }
                if let Some(t) = filter {
                    write!(f, ":{t}")?;
                }
                Ok(())
            }
        }
    }
}

/// The whole `device(…)` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceSpecifier {
    /// Entries, in order. Resolution concatenates and de-duplicates.
    pub entries: Vec<DeviceEntry>,
}

impl fmt::Display for DeviceSpecifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "device(")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

/// Schedule kinds accepted by `dist_schedule(target: …)` — the Table I
/// policies plus the Table II algorithm notations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleKind {
    /// Even static chunks.
    Block,
    /// Runtime picks (the AUTO policy); resolves per the §VI-D
    /// heuristics.
    Auto,
    /// Align the loop distribution with a mapped array's distribution.
    Align {
        /// Array (or loop) whose distribution is copied.
        target: String,
        /// Scale ratio, default 1.
        ratio: u64,
    },
    /// `SCHED_DYNAMIC[,chunk%]`.
    Dynamic {
        /// Chunk size as percent of the trip count (default 2%).
        chunk_pct: Option<u64>,
    },
    /// `SCHED_GUIDED[,first-chunk%]`.
    Guided {
        /// Initial chunk percent (default 20%).
        chunk_pct: Option<u64>,
    },
    /// `MODEL_1_AUTO` — compute-only analytical model.
    Model1,
    /// `MODEL_2_AUTO` — compute + data-movement analytical model.
    Model2,
    /// `SCHED_PROFILE_AUTO[,sample%]` — constant-size sample profiling.
    ProfileAuto {
        /// Stage-1 sample size percent (default 10%).
        sample_pct: Option<u64>,
    },
    /// `MODEL_PROFILE_AUTO[,sample%]` — model-sized sample profiling.
    ModelProfile {
        /// Stage-1 sample size percent (default 10%).
        sample_pct: Option<u64>,
    },
    /// `WORK_ASSIST[,min%]` — model-derived initial shares with
    /// dynamic tail-stealing rescue of stragglers.
    WorkAssist {
        /// Smallest stealable tail percent (default 5%).
        min_pct: Option<u64>,
    },
}

impl fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleKind::Block => write!(f, "BLOCK"),
            ScheduleKind::Auto => write!(f, "AUTO"),
            ScheduleKind::Align { target, ratio } => {
                if *ratio == 1 {
                    write!(f, "ALIGN({target})")
                } else {
                    write!(f, "ALIGN({target},{ratio})")
                }
            }
            ScheduleKind::Dynamic { chunk_pct } => match chunk_pct {
                Some(c) => write!(f, "SCHED_DYNAMIC,{c}%"),
                None => write!(f, "SCHED_DYNAMIC"),
            },
            ScheduleKind::Guided { chunk_pct } => match chunk_pct {
                Some(c) => write!(f, "SCHED_GUIDED,{c}%"),
                None => write!(f, "SCHED_GUIDED"),
            },
            ScheduleKind::Model1 => write!(f, "MODEL_1_AUTO"),
            ScheduleKind::Model2 => write!(f, "MODEL_2_AUTO"),
            ScheduleKind::ProfileAuto { sample_pct } => match sample_pct {
                Some(s) => write!(f, "SCHED_PROFILE_AUTO,{s}%"),
                None => write!(f, "SCHED_PROFILE_AUTO"),
            },
            ScheduleKind::ModelProfile { sample_pct } => match sample_pct {
                Some(s) => write!(f, "MODEL_PROFILE_AUTO,{s}%"),
                None => write!(f, "MODEL_PROFILE_AUTO"),
            },
            ScheduleKind::WorkAssist { min_pct } => match min_pct {
                Some(m) => write!(f, "WORK_ASSIST,{m}%"),
                None => write!(f, "WORK_ASSIST"),
            },
        }
    }
}

/// Which level the schedule applies to: between devices (`target`) or
/// between the teams of one device (`teams`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleLevel {
    /// Distribution among target devices — the HOMP extension.
    Target,
    /// Distribution among teams within a device — standard OpenMP.
    Teams,
}

impl fmt::Display for ScheduleLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleLevel::Target => write!(f, "target"),
            ScheduleLevel::Teams => write!(f, "teams"),
        }
    }
}

/// `dist_schedule(level: [kind][, CUTOFF%])`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistSchedule {
    /// Target or teams level.
    pub level: ScheduleLevel,
    /// The schedule kind.
    pub kind: ScheduleKind,
    /// Optional CUTOFF ratio percentage for the model/profile kinds.
    pub cutoff_pct: Option<u64>,
}

impl fmt::Display for DistSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dist_schedule({}:[{}]", self.level, self.kind)?;
        if let Some(c) = self.cutoff_pct {
            write!(f, ", CUTOFF({c}%)")?;
        }
        write!(f, ")")
    }
}

/// Reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReductionOp {
    /// `+`
    Sum,
    /// `*`
    Prod,
    /// `max`
    Max,
    /// `min`
    Min,
}

impl fmt::Display for ReductionOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReductionOp::Sum => write!(f, "+"),
            ReductionOp::Prod => write!(f, "*"),
            ReductionOp::Max => write!(f, "max"),
            ReductionOp::Min => write!(f, "min"),
        }
    }
}

/// One clause of a directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Clause {
    /// `device(…)`
    Device(DeviceSpecifier),
    /// `map(…)`
    Map(MapClause),
    /// `dist_schedule(…)`
    DistSchedule(DistSchedule),
    /// `collapse(n)`
    Collapse(u64),
    /// `reduction(op: vars…)`
    Reduction {
        /// Operator.
        op: ReductionOp,
        /// Reduced variables.
        vars: Vec<String>,
    },
    /// `num_threads(expr)`
    NumThreads(Expr),
    /// `shared(vars…)`
    Shared(Vec<String>),
    /// `private(vars…)`
    Private(Vec<String>),
    /// `to(items…)` motion clause on a `target update` directive:
    /// force-refresh device copies from the host.
    UpdateTo(Vec<MapItem>),
    /// `from(items…)` motion clause on a `target update` directive:
    /// force-copy device data back to the host.
    UpdateFrom(Vec<MapItem>),
    /// `nowait` — the offload does not end at a barrier: a downstream
    /// pipeline stage may consume produced chunks as they land.
    Nowait,
    /// `depend(in|out|inout: vars…)` — explicit dependency arrays for
    /// pipeline edge inference, overriding map-direction inference.
    Depend {
        /// Dependence direction.
        kind: DependKind,
        /// The named arrays.
        vars: Vec<String>,
    },
}

/// Direction of a `depend(…)` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DependKind {
    /// `depend(in: …)` — the stage reads these arrays.
    In,
    /// `depend(out: …)` — the stage writes these arrays.
    Out,
    /// `depend(inout: …)` — the stage both reads and writes them.
    InOut,
}

impl fmt::Display for DependKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DependKind::In => write!(f, "in"),
            DependKind::Out => write!(f, "out"),
            DependKind::InOut => write!(f, "inout"),
        }
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Clause::Device(d) => write!(f, "{d}"),
            Clause::Map(m) => write!(f, "{m}"),
            Clause::DistSchedule(s) => write!(f, "{s}"),
            Clause::Collapse(n) => write!(f, "collapse({n})"),
            Clause::Reduction { op, vars } => write!(f, "reduction({op}:{})", vars.join(",")),
            Clause::NumThreads(e) => write!(f, "num_threads({e})"),
            Clause::Shared(v) => write!(f, "shared({})", v.join(", ")),
            Clause::Private(v) => write!(f, "private({})", v.join(", ")),
            Clause::UpdateTo(items) => {
                write!(f, "to(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            Clause::UpdateFrom(items) => {
                write!(f, "from(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            Clause::Nowait => write!(f, "nowait"),
            Clause::Depend { kind, vars } => {
                write!(f, "depend({kind}: {})", vars.join(", "))
            }
        }
    }
}

/// Construct keywords a directive is made of (`parallel target`,
/// `parallel for target distribute`, `halo_exchange`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstructKeyword {
    /// `parallel`
    Parallel,
    /// `for`
    For,
    /// `target`
    Target,
    /// `data`
    Data,
    /// `distribute`
    Distribute,
    /// `teams`
    Teams,
    /// `halo_exchange`
    HaloExchange,
    /// `update` (as in `target update`)
    Update,
}

impl fmt::Display for ConstructKeyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstructKeyword::Parallel => write!(f, "parallel"),
            ConstructKeyword::For => write!(f, "for"),
            ConstructKeyword::Target => write!(f, "target"),
            ConstructKeyword::Data => write!(f, "data"),
            ConstructKeyword::Distribute => write!(f, "distribute"),
            ConstructKeyword::Teams => write!(f, "teams"),
            ConstructKeyword::HaloExchange => write!(f, "halo_exchange"),
            ConstructKeyword::Update => write!(f, "update"),
        }
    }
}

/// A parsed directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// Construct keywords in source order.
    pub constructs: Vec<ConstructKeyword>,
    /// Clauses in source order.
    pub clauses: Vec<Clause>,
    /// Argument of `halo_exchange (var)` if this is that directive.
    pub halo_exchange_var: Option<String>,
}

impl Directive {
    /// Whether the directive is the `parallel target` composite
    /// (concurrent offload to all targets, Section III-4).
    pub fn is_parallel_target(&self) -> bool {
        self.constructs.contains(&ConstructKeyword::Parallel)
            && self.constructs.contains(&ConstructKeyword::Target)
    }

    /// First `device` clause, if any.
    pub fn device(&self) -> Option<&DeviceSpecifier> {
        self.clauses.iter().find_map(|c| match c {
            Clause::Device(d) => Some(d),
            _ => None,
        })
    }

    /// All `map` clauses.
    pub fn maps(&self) -> impl Iterator<Item = &MapClause> {
        self.clauses.iter().filter_map(|c| match c {
            Clause::Map(m) => Some(m),
            _ => None,
        })
    }

    /// First target-level `dist_schedule`, if any.
    pub fn dist_schedule(&self) -> Option<&DistSchedule> {
        self.clauses.iter().find_map(|c| match c {
            Clause::DistSchedule(s) if s.level == ScheduleLevel::Target => Some(s),
            _ => None,
        })
    }

    /// Whether this is a `target data` directive (a structured
    /// device-data region, not an executable offload).
    pub fn is_target_data(&self) -> bool {
        self.constructs.contains(&ConstructKeyword::Target)
            && self.constructs.contains(&ConstructKeyword::Data)
    }

    /// Whether this is a `target update` directive (forced host↔device
    /// refresh inside a data region).
    pub fn is_target_update(&self) -> bool {
        self.constructs.contains(&ConstructKeyword::Target)
            && self.constructs.contains(&ConstructKeyword::Update)
    }

    /// Items of every `to(...)` motion clause (on `target update`).
    pub fn update_to(&self) -> impl Iterator<Item = &MapItem> {
        self.clauses
            .iter()
            .filter_map(|c| match c {
                Clause::UpdateTo(items) => Some(items.iter()),
                _ => None,
            })
            .flatten()
    }

    /// Items of every `from(...)` motion clause (on `target update`).
    pub fn update_from(&self) -> impl Iterator<Item = &MapItem> {
        self.clauses
            .iter()
            .filter_map(|c| match c {
                Clause::UpdateFrom(items) => Some(items.iter()),
                _ => None,
            })
            .flatten()
    }

    /// `collapse(n)` argument, defaulting to 1.
    pub fn collapse(&self) -> u64 {
        self.clauses
            .iter()
            .find_map(|c| match c {
                Clause::Collapse(n) => Some(*n),
                _ => None,
            })
            .unwrap_or(1)
    }

    /// Whether the directive carries a `nowait` clause.
    pub fn is_nowait(&self) -> bool {
        self.clauses.iter().any(|c| matches!(c, Clause::Nowait))
    }

    /// Arrays named in `depend(in: …)` and `depend(inout: …)` clauses,
    /// in source order.
    pub fn depends_in(&self) -> impl Iterator<Item = &str> {
        self.clauses
            .iter()
            .filter_map(|c| match c {
                Clause::Depend { kind: DependKind::In | DependKind::InOut, vars } => {
                    Some(vars.iter().map(String::as_str))
                }
                _ => None,
            })
            .flatten()
    }

    /// Arrays named in `depend(out: …)` and `depend(inout: …)` clauses,
    /// in source order.
    pub fn depends_out(&self) -> impl Iterator<Item = &str> {
        self.clauses
            .iter()
            .filter_map(|c| match c {
                Clause::Depend { kind: DependKind::Out | DependKind::InOut, vars } => {
                    Some(vars.iter().map(String::as_str))
                }
                _ => None,
            })
            .flatten()
    }
}

impl fmt::Display for Directive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#pragma omp")?;
        for c in &self.constructs {
            write!(f, " {c}")?;
        }
        if let Some(v) = &self.halo_exchange_var {
            write!(f, " ({v})")?;
        }
        for c in &self.clauses {
            write!(f, " {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_eval_and_vars() {
        let e = Expr::Binary {
            op: BinOp::Div,
            lhs: Box::new(Expr::Ident("n".into())),
            rhs: Box::new(Expr::Int(2)),
        };
        let mut env = Env::new();
        env.insert("n".into(), 10);
        assert_eq!(e.eval(&env), Ok(5));
        let mut vars = Vec::new();
        e.free_vars(&mut vars);
        assert_eq!(vars, vec!["n".to_string()]);
    }

    #[test]
    fn eval_errors() {
        let unbound = Expr::Ident("missing".into());
        assert_eq!(unbound.eval(&Env::new()), Err(EvalError::Unbound("missing".into())));
        let div0 = Expr::Binary {
            op: BinOp::Div,
            lhs: Box::new(Expr::Int(1)),
            rhs: Box::new(Expr::Int(0)),
        };
        assert_eq!(div0.eval(&Env::new()), Err(EvalError::DivideByZero));
        let ovf = Expr::Binary {
            op: BinOp::Mul,
            lhs: Box::new(Expr::Int(i64::MAX)),
            rhs: Box::new(Expr::Int(2)),
        };
        assert_eq!(ovf.eval(&Env::new()), Err(EvalError::Overflow));
    }

    #[test]
    fn display_forms() {
        let sec = ArraySection {
            name: "y".into(),
            dims: vec![SectionDim { start: Expr::Int(0), len: Expr::Ident("n".into()) }],
        };
        assert_eq!(sec.to_string(), "y[0:n]");
        let p = PartitionSpec { dims: vec![(DistPolicy::Block, true)] };
        assert_eq!(p.to_string(), "partition([BLOCK])");
        let h = HaloSpec { widths: vec![Some(1), None] };
        assert_eq!(h.to_string(), "halo(1,)");
        let d = DeviceSpecifier {
            entries: vec![
                DeviceEntry::Range { start: 0, count: Count::N(2), filter: None },
                DeviceEntry::Range { start: 4, count: Count::All, filter: Some("HOMP_DEVICE_NVGPU".into()) },
            ],
        };
        assert_eq!(d.to_string(), "device(0:2, 4:*:HOMP_DEVICE_NVGPU)");
        let s = DistSchedule {
            level: ScheduleLevel::Target,
            kind: ScheduleKind::Dynamic { chunk_pct: Some(2) },
            cutoff_pct: Some(15),
        };
        assert_eq!(s.to_string(), "dist_schedule(target:[SCHED_DYNAMIC,2%], CUTOFF(15%))");
    }

    #[test]
    fn directive_accessors() {
        let d = Directive {
            constructs: vec![ConstructKeyword::Parallel, ConstructKeyword::Target],
            clauses: vec![
                Clause::Device(DeviceSpecifier { entries: vec![DeviceEntry::All] }),
                Clause::Collapse(2),
            ],
            halo_exchange_var: None,
        };
        assert!(d.is_parallel_target());
        assert!(d.device().is_some());
        assert_eq!(d.collapse(), 2);
        assert!(d.dist_schedule().is_none());
    }
}
