//! Robustness: the directive front-end must never panic — arbitrary
//! input produces `Ok` or a positioned `Err`, and every valid directive
//! round-trips through its canonical printed form.

use homp_lang::{parse_directive, token};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Total safety: any string, including control characters and
    /// unicode, must lex+parse without panicking.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse_directive(&input);
    }

    /// Inputs made of directive-ish tokens — much likelier to get deep
    /// into the parser than fully random strings.
    #[test]
    fn parser_never_panics_on_tokeny_input(
        words in proptest::collection::vec(
            prop_oneof![
                Just("parallel"), Just("for"), Just("target"), Just("device"),
                Just("map"), Just("partition"), Just("halo"), Just("distribute"),
                Just("dist_schedule"), Just("ALIGN"), Just("BLOCK"), Just("AUTO"),
                Just("FULL"), Just("reduction"), Just("collapse"), Just("("),
                Just(")"), Just("["), Just("]"), Just(","), Just(":"), Just("*"),
                Just("+"), Just("-"), Just("/"), Just("0"), Just("17"), Just("2%"),
                Just("tofrom"), Just("to"), Just("x"), Just("y"), Just("n"),
            ],
            0..40,
        )
    ) {
        let src = words.join(" ");
        let _ = parse_directive(&src);
    }

    /// Lexer totality.
    #[test]
    fn lexer_never_panics(input in ".{0,300}") {
        let _ = token::lex(&input);
    }

    /// Every successfully parsed tokeny input round-trips: printing the
    /// AST and reparsing yields the same AST.
    #[test]
    fn successful_parses_roundtrip(
        words in proptest::collection::vec(
            prop_oneof![
                Just("parallel"), Just("for"), Just("target"), Just("data"),
                Just("device(*)"), Just("device(0:*)"), Just("collapse(2)"),
                Just("map(to: x[0:n])"), Just("map(tofrom: y[0:n] partition([BLOCK]))"),
                Just("reduction(+:err)"),
                Just("distribute dist_schedule(target:[AUTO])"),
                Just("dist_schedule(target:[SCHED_DYNAMIC,2%])"),
            ],
            1..8,
        )
    ) {
        let src = format!("parallel {}", words.join(" "));
        if let Ok(d1) = parse_directive(&src) {
            let printed = d1.to_string();
            let d2 = parse_directive(&printed)
                .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
            prop_assert_eq!(d1, d2);
        }
    }
}

/// Table-driven corpus: directive text → expected outcome. Documents the
/// accepted dialect and pins error behaviour.
#[test]
fn directive_corpus() {
    let valid = [
        // The paper's listings.
        "#pragma omp target device (0) map(tofrom: y[0:n]) map(to: x[0:n],a,n)",
        "#pragma omp parallel for shared(x, y, n, a)",
        "#pragma omp parallel num_threads(ndev)",
        "#pragma omp target device (devid) map(tofrom: y[start:size]) map(to: x[start:size],a,size)",
        "#pragma omp parallel target device (*) map(tofrom: y[0:n] partition([BLOCK])) map(to: x[0:n] partition([BLOCK]),a,n)",
        "#pragma omp parallel for distribute dist_schedule(target:[ALIGN(x)])",
        "#pragma omp parallel target device (*) map(tofrom: y[0:n] partition([ALIGN(loop)])) map(to: x[0:n] partition([ALIGN(loop)]),a,n)",
        "#pragma omp parallel for distribute dist_schedule(target:[AUTO])",
        "#pragma omp parallel target data device(*) map(to:n, m, omega, ax, ay, b, f[0:n][0:m] partition([ALIGN(loop1)], FULL)) map(tofrom:u[0:n][0:m] partition([ALIGN(loop1)], FULL)) map(alloc:uold[0:n][0:m] partition([ALIGN(loop1)], FULL) halo(1,))",
        "#pragma omp parallel for target device(*) collapse(2) distribute dist_schedule(target:[ALIGN(loop1)])",
        "#pragma omp halo_exchange (uold)",
        "#pragma omp parallel for target device(*) reduction(+:error) distribute dist_schedule(target:[AUTO])",
        // Dialect corners.
        "target device(0:2, 4:2)",
        "target device(0:*:HOMP_DEVICE_NVGPU)",
        "target map(to: a[i:j+1][0:m/2])",
        "parallel for private(i, j) shared(u)",
        "parallel for reduction(max:err)",
        "parallel for distribute dist_schedule(teams:[BLOCK])",
        "parallel for distribute dist_schedule(target:[MODEL_PROFILE_AUTO,10%], CUTOFF(15%))",
        "parallel for distribute dist_schedule(target:[ALIGN(x,4)])",
    ];
    for src in valid {
        if let Err(e) = parse_directive(src) {
            panic!("expected `{src}` to parse, got: {e}");
        }
    }

    let invalid = [
        "",                                                  // no construct
        "#pragma omp",                                       // no construct
        "map(to: x)",                                        // clause without construct
        "parallel frobnicate(1)",                            // unknown clause
        "target device()",                                   // empty device list
        "target device(0:)",                                 // dangling colon
        "target map(to:)",                                   // empty item list
        "target map(sideways: x)",                           // bad direction
        "target map(to: x[0:n)",                             // unbalanced
        "parallel for collapse(0)",                          // zero collapse
        "parallel for collapse(two)",                        // non-integer
        "parallel for distribute dist_schedule(target:[WIBBLE])", // unknown kind
        "parallel for distribute dist_schedule(sideways:[BLOCK])", // bad level
        "parallel for reduction(&:x)",                       // bad operator
        "target map(to: x[0:n] partition([CYCLIC]))",        // policy not in Table I
        "parallel for num_threads()",                        // empty expression
    ];
    for src in invalid {
        if parse_directive(src).is_ok() {
            panic!("expected `{src}` to be rejected");
        }
    }
}
